//! The `trace-report` subcommand: read a `pcm-trace` JSONL file and
//! print the [`pcm_sim::trace_report`] summary.
//!
//! This module is a thin I/O wrapper — all analysis lives in
//! `pcm_sim::trace_report` so library users and the `trace_explorer`
//! example get exactly the same numbers as the CLI.

/// Parsed `trace-report` flags.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit the report as one JSON object instead of tables.
    pub json: bool,
    /// Rows in the longest-spans table.
    pub top: usize,
    /// Fail (nonzero exit) when the trace dropped any events to ring
    /// wrap — a dropped event means the report undercounts.
    pub strict: bool,
}

/// Read `path` and render its report per `opts`. Errors are returned as
/// display-ready strings so `main` stays a thin exit-code adapter.
pub fn report_file(path: &str, opts: &Options) -> Result<String, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    report_str(&doc, opts).map_err(|e| format!("{path}: {e}"))
}

/// [`report_file`] over an in-memory document (testable without I/O).
pub fn report_str(doc: &str, opts: &Options) -> Result<String, String> {
    let top = if opts.top == 0 { 10 } else { opts.top };
    let report = pcm_sim::trace_report::analyze_top(doc, top).map_err(|e| e.to_string())?;
    if opts.strict && report.total_dropped > 0 {
        return Err(format!(
            "strict: {} event(s) dropped to ring wrap — the report undercounts; \
             re-record with a larger trace capacity",
            report.total_dropped
        ));
    }
    Ok(if opts.json {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        report.render_text()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        use pcm_trace::{jsonl, OpKind, Recorder, TraceConfig};
        let rec = Recorder::buffered(2, &TraceConfig::new(32));
        rec.span(OpKind::Read, 0, 1, (100, 300), (0, 0));
        rec.span(OpKind::Write, 1, 2, (500, 1500), (1, 0));
        jsonl::export(&rec.buffer().expect("buffered").snapshot())
    }

    #[test]
    fn text_report_renders_tables() {
        let out = report_str(&sample_doc(), &Options::default()).unwrap();
        assert!(out.contains("2 banks"), "{out}");
        assert!(out.contains("longest spans"), "{out}");
    }

    #[test]
    fn json_report_has_fixed_shape() {
        let opts = Options {
            json: true,
            top: 5,
            strict: false,
        };
        let out = report_str(&sample_doc(), &opts).unwrap();
        assert!(out.starts_with("{\"banks\":2,\"capacity\":32,"), "{out}");
        assert!(out.contains("\"per_bank\":["), "{out}");
        assert!(out.contains("\"top_spans\":["), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        // Byte-stable across invocations.
        assert_eq!(out, report_str(&sample_doc(), &opts).unwrap());
    }

    #[test]
    fn bad_input_is_an_error_string() {
        assert!(report_str("nope\n", &Options::default()).is_err());
        assert!(report_file("/nonexistent/trace.jsonl", &Options::default()).is_err());
    }

    #[test]
    fn strict_fails_on_dropped_events() {
        use pcm_trace::{jsonl, OpKind, Recorder, TraceConfig};
        // A 2-slot ring receiving 4 spans (8 events) must drop.
        let rec = Recorder::buffered(1, &TraceConfig::new(2));
        for i in 0..4u64 {
            rec.span(
                OpKind::Read,
                0,
                i as u32,
                (i * 1000, i * 1000 + 200),
                (i, 0),
            );
        }
        let doc = jsonl::export(&rec.buffer().expect("buffered").snapshot());
        let strict = Options {
            strict: true,
            ..Options::default()
        };
        // Lax mode still renders; strict mode refuses.
        assert!(report_str(&doc, &Options::default()).is_ok());
        let err = report_str(&doc, &strict).unwrap_err();
        assert!(err.contains("dropped"), "{err}");
        // A loss-free trace passes strict.
        assert!(report_str(&sample_doc(), &strict).is_ok());
    }
}
