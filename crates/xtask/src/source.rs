//! Token-stream structure on top of the lexer: test regions, function
//! bodies, and `// pcm-lint: allow(…)` suppression comments.
//!
//! `pcm-lint` rules only apply to *library* code, so the model's main job
//! is deciding which tokens are test-only: any item (fn, mod, impl, …)
//! under a `#[cfg(test)]` or `#[test]` attribute is excluded, including
//! everything inside a `#[cfg(test)] mod tests { … }` block. Doc examples
//! need no special casing — they live inside comment tokens and never
//! reach the code stream.

use crate::lexer::{lex, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// A function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index (into [`SourceFile::code`]) of the `fn` keyword.
    pub start: usize,
    /// Index of the body's opening `{` (== `end` for bodyless decls).
    pub body_start: usize,
    /// Index one past the body's closing `}`.
    pub end: usize,
    /// True when the function is test-only code.
    pub in_test: bool,
}

/// A lexed file plus the structure the rules need.
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative).
    pub rel: String,
    /// Name of the crate this file belongs to.
    pub crate_name: String,
    /// Code tokens (comments stripped).
    pub code: Vec<Token>,
    /// Comment tokens, in source order.
    pub comments: Vec<Token>,
    /// `in_test[i]` — is `code[i]` inside test-only code?
    pub in_test: Vec<bool>,
    /// Function spans, outermost first (nested fns appear separately).
    pub fns: Vec<FnSpan>,
    /// line → rule ids suppressed by a `pcm-lint: allow(…)` comment.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

impl SourceFile {
    /// Lex and structure `src`.
    pub fn parse(rel: &str, crate_name: &str, src: &str) -> Self {
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for tok in lex(src) {
            match tok.kind {
                TokKind::LineComment | TokKind::BlockComment => comments.push(tok),
                _ => code.push(tok),
            }
        }
        let in_test = mark_test_regions(&code);
        let fns = find_fns(&code, &in_test);
        let allows = collect_allows(&comments);
        Self {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            code,
            comments,
            in_test,
            fns,
            allows,
        }
    }

    /// Is a diagnostic of `rule` at `line` suppressed? Allow comments act
    /// on their own line and the line directly below, so both trailing
    /// (`stmt; // pcm-lint: allow(x)`) and preceding-line placements work.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|s| s.contains(rule)))
    }

    /// Every `pcm-lint: allow(…)` site in this file, as
    /// `(line, rule)` pairs in line order. The suppression audit walks
    /// these to find allows that no longer suppress anything.
    pub fn allow_sites(&self) -> Vec<(u32, String)> {
        self.allows
            .iter()
            .flat_map(|(line, rules)| rules.iter().map(move |r| (*line, r.clone())))
            .collect()
    }

    /// Convenience: the code token at `i`, if any.
    pub fn tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i)
    }

    /// Is `code[i]` an Ident with this exact text?
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tok(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// Is `code[i]` a Punct with this exact text?
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tok(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }
}

/// Parse `pcm-lint: allow(rule-a, rule-b)` out of comment tokens.
fn collect_allows(comments: &[Token]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for c in comments {
        let Some(at) = c.text.find("pcm-lint:") else {
            continue;
        };
        let rest = &c.text[at + "pcm-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        for rule in rest[open + "allow(".len()..open + close].split(',') {
            map.entry(c.line)
                .or_default()
                .insert(rule.trim().to_string());
        }
    }
    map
}

/// Mark the token ranges of test-only items.
///
/// Walks the stream looking for `#[test]` / `#[cfg(test)]`-family
/// attributes; the attributed item's full extent (to its matching `}` or
/// terminating `;`) is marked, nested content included.
fn mark_test_regions(code: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !(code[i].kind == TokKind::Punct && code[i].text == "#") {
            i += 1;
            continue;
        }
        // `#[…]` or `#![…]` — collect the attribute's tokens.
        let mut j = i + 1;
        if j < code.len() && code[j].kind == TokKind::Punct && code[j].text == "!" {
            j += 1;
        }
        if !(j < code.len() && code[j].kind == TokKind::Punct && code[j].text == "[") {
            i += 1;
            continue;
        }
        let attr_start = j + 1;
        let mut depth = 1usize;
        j += 1;
        while j < code.len() && depth > 0 {
            match (code[j].kind, code[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr = &code[attr_start..j.saturating_sub(1)];
        if is_test_attr(attr) {
            // Skip any further attributes on the same item.
            let mut item = j;
            while item < code.len() && code[item].kind == TokKind::Punct && code[item].text == "#" {
                item = skip_attr(code, item);
            }
            let end = item_end(code, item);
            for flag in in_test.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
        } else {
            i = j;
        }
    }
    in_test
}

/// Does this attribute token slice mean "test-only"? Matches `test`,
/// `cfg(test)`, and composites like `cfg(all(test, feature = "x"))`.
fn is_test_attr(attr: &[Token]) -> bool {
    match attr.first() {
        Some(t) if t.kind == TokKind::Ident && t.text == "test" => attr.len() == 1,
        Some(t) if t.kind == TokKind::Ident && t.text == "cfg" => attr
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test"),
        _ => false,
    }
}

/// Given `code[i] == "#"`, return the index just past the attribute.
fn skip_attr(code: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if j < code.len() && code[j].kind == TokKind::Punct && code[j].text == "!" {
        j += 1;
    }
    if !(j < code.len() && code[j].kind == TokKind::Punct && code[j].text == "[") {
        return i + 1;
    }
    let mut depth = 1usize;
    j += 1;
    while j < code.len() && depth > 0 {
        match (code[j].kind, code[j].text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// The index one past the end of the item starting at `i`: either past
/// the matching `}` of its first top-level brace block, or past the
/// terminating `;` (whichever comes first at nesting depth 0).
fn item_end(code: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0isize;
    while j < code.len() {
        match (code[j].kind, code[j].text.as_str()) {
            (TokKind::Punct, "{" | "(" | "[") => depth += 1,
            (TokKind::Punct, ")" | "]") => depth -= 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            (TokKind::Punct, ";") if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Locate every `fn` item and its body extent.
fn find_fns(code: &[Token], in_test: &[bool]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..code.len() {
        if !(code[i].kind == TokKind::Ident && code[i].text == "fn") {
            continue;
        }
        // `fn` must be followed by the function's name.
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Find the body's `{`, or `;` for bodyless trait/extern decls.
        // Parens/brackets (argument lists, array types) are skipped as
        // nested groups; the first top-level `{` starts the body.
        let mut j = i + 2;
        let mut depth = 0isize;
        let mut body_start = None;
        while j < code.len() {
            match (code[j].kind, code[j].text.as_str()) {
                (TokKind::Punct, "(" | "[") => depth += 1,
                (TokKind::Punct, ")" | "]") => depth -= 1,
                (TokKind::Punct, "{") if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                (TokKind::Punct, ";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body_start) = body_start else {
            fns.push(FnSpan {
                name: name_tok.text.clone(),
                start: i,
                body_start: j,
                end: j,
                in_test: in_test.get(i).copied().unwrap_or(false),
            });
            continue;
        };
        let end = item_end(code, body_start);
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            start: i,
            body_start,
            end,
            in_test: in_test.get(i).copied().unwrap_or(false),
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs", "test-crate", src)
    }

    #[test]
    fn cfg_test_mod_is_marked_to_its_closing_brace() {
        let f = file(
            "fn lib_code() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { y.unwrap(); }\n\
                 #[test]\n\
                 fn t() { z.unwrap(); }\n\
             }\n\
             fn more_lib() {}\n",
        );
        let unwraps: Vec<bool> = f
            .code
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &b)| b)
            .collect();
        assert_eq!(unwraps, vec![false, true, true]);
        let more = f
            .code
            .iter()
            .zip(&f.in_test)
            .find(|(t, _)| t.text == "more_lib")
            .map(|(_, &b)| b);
        assert_eq!(more, Some(false));
    }

    #[test]
    fn test_attr_on_single_fn() {
        let f = file("#[test]\nfn t() { a.unwrap(); }\nfn lib() { b.unwrap(); }");
        let unwraps: Vec<bool> = f
            .code
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &b)| b)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn fn_spans_cover_bodies_and_names() {
        let f = file("fn alpha(x: [u8; 4]) -> u32 { if x[0] > 0 { 1 } else { 2 } }\nfn beta() {}");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "alpha");
        assert_eq!(f.fns[1].name, "beta");
        // alpha's span must include both nested braces and stop before beta.
        let alpha = &f.fns[0];
        let beta = &f.fns[1];
        assert!(alpha.end <= beta.start);
        assert!(f.code[alpha.body_start].text == "{");
        assert!(f.code[alpha.end - 1].text == "}");
    }

    #[test]
    fn allow_comments_cover_their_line_and_the_next() {
        let f = file(
            "// pcm-lint: allow(no-panic-lib)\n\
             fn f() {}\n\
             fn g() {} // pcm-lint: allow(rule-a, rule-b)\n",
        );
        assert!(f.is_allowed("no-panic-lib", 1));
        assert!(f.is_allowed("no-panic-lib", 2));
        assert!(!f.is_allowed("no-panic-lib", 3));
        assert!(f.is_allowed("rule-a", 3));
        assert!(f.is_allowed("rule-b", 3));
        assert!(f.is_allowed("rule-a", 4));
        assert!(!f.is_allowed("rule-c", 3));
    }
}
