//! Workspace-level item model on top of the per-file token stream.
//!
//! PR 3's rules were token-local: each looked at one file's tokens and
//! nothing else. The concurrency contracts this crate now checks —
//! the `stripe → allocator → bank` lock order, the atomic-ordering
//! gate ROADMAP item 2 needs before the per-bank `Mutex` becomes
//! CAS/seqlock state — are *inter-procedural*: whether `PcmStore::put`
//! may acquire a bank lock depends on what `Allocator::allocate` does
//! three calls away. This module recovers just enough structure for
//! that, without a real parser:
//!
//! * [`impl_spans`] — which `impl` block (and so which type) a
//!   function belongs to, so `Gf::shared(…)` resolves to the right
//!   item;
//! * [`CallEvent`]s — every `name(…)` call in a function body, split
//!   into free / method / `self.` / `Type::` forms, plus raw
//!   `.lock(…)` acquisition sites, in token order;
//! * [`Workspace`] — all lintable files at once, with the crate
//!   dependency closure (hand-parsed from the manifests) so name
//!   resolution never crosses an edge the build graph doesn't have.
//!
//! Resolution is deliberately over-approximate — an unqualified
//! `x.get(…)` resolves to every visible method named `get` — because
//! the lock-order analysis only needs a *may-acquire* relation;
//! over-approximation can cost a spurious edge but never misses one.
//! Under-approximation is confined to cases the workspace style avoids
//! (turbofish calls, function pointers passed as values).

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a bare path call.
    Free,
    /// `expr.name(…)` — a method call on a non-`self` receiver.
    Method,
    /// `self.name(…)` or `Self::name(…)`.
    SelfMethod,
    /// `Type::name(…)` — the qualifier is the path segment before `::`.
    Qualified(String),
}

/// One call (or raw lock acquisition) inside a function body.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Index of the callee-name token in the file's code stream.
    pub tok: usize,
    /// The callee name.
    pub name: String,
    /// How the callee was named.
    pub kind: CallKind,
    /// True for `.lock(` — a raw mutex acquisition site.
    pub raw_lock: bool,
}

/// A function with its workspace context and body events.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The `impl` type the function belongs to, if any.
    pub impl_type: Option<String>,
    /// True for test-only code (skipped as an analysis *source* and
    /// excluded from the resolution table as a *target*).
    pub in_test: bool,
    /// Index of the `fn` keyword token, for span-accurate diagnostics
    /// about the definition itself.
    pub decl_tok: usize,
    /// Calls and raw lock sites, in token order, nested fns excluded.
    pub events: Vec<CallEvent>,
}

/// Every lintable file of the workspace plus the structure the
/// inter-procedural analyses need.
pub struct Workspace {
    /// Parsed files, in walk order.
    pub files: Vec<SourceFile>,
    /// All functions across all files.
    pub fns: Vec<FnInfo>,
    /// crate → crates visible to it (itself plus its transitive
    /// workspace dependencies).
    visible: BTreeMap<String, BTreeSet<String>>,
}

/// Idents that look like calls (`if (cond)…` styles) but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "move", "as",
    "mut", "ref", "break", "continue", "where", "impl", "dyn", "unsafe", "box", "await",
];

impl Workspace {
    /// Build the model from parsed files and the crates' *direct*
    /// dependency lists (the closure is computed here).
    pub fn new(files: Vec<SourceFile>, direct_deps: &BTreeMap<String, BTreeSet<String>>) -> Self {
        let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let crates: BTreeSet<String> = files.iter().map(|f| f.crate_name.clone()).collect();
        for krate in &crates {
            let mut seen = BTreeSet::new();
            let mut stack = vec![krate.clone()];
            while let Some(c) = stack.pop() {
                if !seen.insert(c.clone()) {
                    continue;
                }
                if let Some(deps) = direct_deps.get(&c) {
                    stack.extend(deps.iter().cloned());
                }
            }
            visible.insert(krate.clone(), seen);
        }
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let impls = impl_spans(f);
            let nested: Vec<(usize, usize)> = f.fns.iter().map(|s| (s.start, s.end)).collect();
            for span in &f.fns {
                let impl_type = impls
                    .iter()
                    .filter(|(s, e, _)| *s <= span.start && span.end <= *e)
                    .min_by_key(|(s, e, _)| e - s)
                    .map(|(_, _, name)| name.clone());
                // Token ranges of fns nested strictly inside this one —
                // their events belong to them, not to us.
                let inner: Vec<(usize, usize)> = nested
                    .iter()
                    .filter(|(s, e)| *s > span.start && *e <= span.end)
                    .copied()
                    .collect();
                fns.push(FnInfo {
                    file: fi,
                    name: span.name.clone(),
                    impl_type,
                    in_test: span.in_test,
                    decl_tok: span.start,
                    events: body_events(f, span.body_start, span.end, &inner),
                });
            }
        }
        Workspace {
            files,
            fns,
            visible,
        }
    }

    /// A one-file workspace (fixtures, explicit `cargo lint FILE` runs).
    pub fn single(file: SourceFile) -> Self {
        let deps = BTreeMap::new();
        Self::new(vec![file], &deps)
    }

    /// May code in `from` name an item of crate `to`?
    pub fn crate_visible(&self, from: &str, to: &str) -> bool {
        from == to || self.visible.get(from).is_some_and(|set| set.contains(to))
    }

    /// The crate a function belongs to.
    pub fn crate_of(&self, f: &FnInfo) -> &str {
        &self.files[f.file].crate_name
    }
}

/// `(start, end, type_name)` token ranges of the file's `impl` blocks.
/// The type name is the last path segment of the implemented-for type
/// (`impl fmt::Display for Diagnostic` → `Diagnostic`).
pub fn impl_spans(f: &SourceFile) -> Vec<(usize, usize, String)> {
    let code = &f.code;
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].kind == TokKind::Ident && code[i].text == "impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic-parameter list `impl<…>`.
        if f.is_punct(j, "<") {
            let mut depth = 0isize;
            while j < code.len() {
                match code[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        // Collect path segments up to the body `{`; a `for` resets the
        // collection (the tokens before it were the trait).
        let mut segs: Vec<String> = Vec::new();
        let mut collecting = true;
        let mut angle = 0isize;
        let mut body = None;
        while j < code.len() {
            let t = &code[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "for") => {
                    segs.clear();
                    collecting = true;
                }
                (TokKind::Ident, "where") => collecting = false,
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle -= 1,
                (TokKind::Punct, "<<") => angle += 2,
                (TokKind::Punct, ">>") => angle -= 2,
                (TokKind::Punct, "{") if angle <= 0 => {
                    body = Some(j);
                    break;
                }
                (TokKind::Punct, ";") if angle <= 0 => break,
                (TokKind::Ident, s) if collecting && angle <= 0 => segs.push(s.to_string()),
                _ => {}
            }
            j += 1;
        }
        let Some(body) = body else {
            i = j + 1;
            continue;
        };
        let end = brace_block_end(f, body);
        if let Some(name) = segs.last() {
            out.push((i, end, name.clone()));
        }
        i = body + 1; // nested impls (rare) still get scanned
    }
    out
}

/// One past the matching `}` of the `{` at `open`.
fn brace_block_end(f: &SourceFile, open: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open;
    while j < f.code.len() {
        match f.code[j].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    f.code.len()
}

/// Extract call events from a body token range, skipping `inner`
/// (nested fn) ranges.
fn body_events(
    f: &SourceFile,
    start: usize,
    end: usize,
    inner: &[(usize, usize)],
) -> Vec<CallEvent> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(f.code.len()) {
        if let Some(&(_, skip_to)) = inner.iter().find(|(s, _)| *s == i) {
            i = skip_to;
            continue;
        }
        let t = &f.code[i];
        let is_call = t.kind == TokKind::Ident
            && f.is_punct(i + 1, "(")
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str());
        if !is_call {
            i += 1;
            continue;
        }
        let kind = if i >= 1 && f.is_punct(i - 1, "::") {
            match f.tok(i.wrapping_sub(2)) {
                Some(q) if q.kind == TokKind::Ident && q.text == "Self" => CallKind::SelfMethod,
                Some(q) if q.kind == TokKind::Ident => CallKind::Qualified(q.text.clone()),
                // `<T as Trait>::f(…)` and friends — unresolvable.
                _ => CallKind::Qualified(String::new()),
            }
        } else if i >= 1 && f.is_punct(i - 1, ".") {
            let self_recv =
                f.is_ident(i.wrapping_sub(2), "self") && !(i >= 3 && f.is_punct(i - 3, "."));
            if self_recv {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            }
        } else {
            CallKind::Free
        };
        let raw_lock = t.text == "lock" && kind == CallKind::Method
            || t.text == "lock" && kind == CallKind::SelfMethod && f.is_punct(i - 1, ".");
        out.push(CallEvent {
            tok: i,
            name: t.text.clone(),
            kind,
            raw_lock,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::single(SourceFile::parse("m.rs", "pcm-device", src))
    }

    #[test]
    fn impl_types_resolve_including_trait_impls() {
        let w = ws("impl Foo { fn a(&self) {} }\n\
                    impl fmt::Display for Bar { fn fmt(&self) {} }\n\
                    impl<T: Clone> Baz<T> { fn c(&self) {} }\n\
                    fn free() {}\n");
        let types: Vec<(String, Option<String>)> = w
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            types,
            vec![
                ("a".into(), Some("Foo".into())),
                ("fmt".into(), Some("Bar".into())),
                ("c".into(), Some("Baz".into())),
                ("free".into(), None),
            ]
        );
    }

    #[test]
    fn call_kinds_are_classified() {
        let w = ws("impl S {\n\
             fn f(&self) {\n\
                 helper();\n\
                 self.own();\n\
                 Self::assoc();\n\
                 other.method();\n\
                 Gf::shared(4);\n\
                 self.inner.deep();\n\
                 guard.lock();\n\
             }\n\
             }\n");
        let ev = &w.fns[0].events;
        let got: Vec<(&str, &CallKind, bool)> = ev
            .iter()
            .map(|e| (e.name.as_str(), &e.kind, e.raw_lock))
            .collect();
        assert_eq!(
            got,
            vec![
                ("helper", &CallKind::Free, false),
                ("own", &CallKind::SelfMethod, false),
                ("assoc", &CallKind::SelfMethod, false),
                ("method", &CallKind::Method, false),
                ("shared", &CallKind::Qualified("Gf".into()), false),
                ("deep", &CallKind::Method, false),
                ("lock", &CallKind::Method, true),
            ]
        );
    }

    #[test]
    fn nested_fn_events_stay_with_the_inner_fn() {
        let w = ws("fn outer() {\n    fn inner() { deep_call(); }\n    shallow_call();\n}\n");
        let outer = w.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = w.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_names: Vec<&str> = outer.events.iter().map(|e| e.name.as_str()).collect();
        let inner_names: Vec<&str> = inner.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(outer_names, vec!["shallow_call"]);
        assert_eq!(inner_names, vec!["deep_call"]);
    }

    #[test]
    fn macro_invocations_and_keywords_are_not_calls() {
        let w = ws("fn f(x: u32) {\n    if (x > 0) {}\n    format!(\"{x}\");\n    vec![1];\n}\n");
        assert!(w.fns[0].events.is_empty());
    }

    #[test]
    fn visibility_follows_the_dependency_closure() {
        let mut deps = BTreeMap::new();
        deps.insert(
            "pcm-store".to_string(),
            ["pcm-device".to_string()].into_iter().collect(),
        );
        deps.insert(
            "pcm-device".to_string(),
            ["pcm-core".to_string()].into_iter().collect(),
        );
        let files = vec![
            SourceFile::parse("a.rs", "pcm-store", "fn a() {}"),
            SourceFile::parse("b.rs", "pcm-device", "fn b() {}"),
            SourceFile::parse("c.rs", "pcm-core", "fn c() {}"),
        ];
        let w = Workspace::new(files, &deps);
        assert!(w.crate_visible("pcm-store", "pcm-core"));
        assert!(w.crate_visible("pcm-store", "pcm-device"));
        assert!(!w.crate_visible("pcm-device", "pcm-store"));
        assert!(!w.crate_visible("pcm-core", "pcm-device"));
    }
}
