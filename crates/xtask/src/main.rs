//! Workspace automation driver. Five subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [--json] [--audit-allows] [FILE…]
//! cargo run -p xtask -- trace-report [--json] [--top N] [--strict] <file.jsonl>
//! cargo run -p xtask -- obs-report [--json] [--top N] [--strict] <telemetry.jsonl>
//! cargo run -p xtask -- profile-report [--json] [--top N] [--folded] <file.jsonl>
//! cargo run -p xtask -- bench-diff [--max-drop-pct F] <old.json> <new.json>
//! ```
//!
//! `lint` with no files runs the per-file rules plus the workspace
//! lock-order analysis over every workspace crate's `src/` and exits
//! non-zero when any diagnostic is produced; `--audit-allows` instead
//! re-runs every rule with suppression off and fails on any
//! `// pcm-lint: allow(…)` comment whose rule no longer fires there.
//! `trace-report` summarizes a `pcm-trace` JSONL file: per-bank op
//! counts, span-duration histograms, scrub/demand interleaving, and
//! the longest spans. `obs-report` summarizes a `pcm-telemetry` JSONL
//! export: per-bank sample tables with activity sparklines, the top
//! drift-risk banks, and scrub/demand interference windows; on both,
//! `--strict` fails the run when the source ring dropped anything.
//! `profile-report` reconstructs causal per-request latency
//! attribution from correlation ids in a trace (DESIGN.md §17);
//! `--folded` emits collapsed flamegraph stacks instead.
//! `bench-diff` compares two bench JSON documents and fails when a
//! throughput leaf drops more than `--max-drop-pct` percent (default
//! 10). Where supported, `--json` switches to the stable
//! machine-readable schema documented in DESIGN.md §15.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("trace-report") => trace_report(&args[1..]),
        Some("obs-report") => obs_report(&args[1..]),
        Some("profile-report") => profile_report(&args[1..]),
        Some("bench-diff") => bench_diff(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- lint [--json] [--audit-allows] [FILE…]");
    eprintln!(
        "       cargo run -p xtask -- trace-report [--json] [--top N] [--strict] <file.jsonl>"
    );
    eprintln!(
        "       cargo run -p xtask -- obs-report [--json] [--top N] [--strict] <telemetry.jsonl>"
    );
    eprintln!(
        "       cargo run -p xtask -- profile-report [--json] [--top N] [--folded] <file.jsonl>"
    );
    eprintln!("       cargo run -p xtask -- bench-diff [--max-drop-pct F] <old.json> <new.json>");
    eprintln!();
    eprintln!("rules:");
    for rule in xtask::rules::all() {
        eprintln!("  {:<26} {}", rule.id(), rule.describe());
    }
    eprintln!(
        "  {:<26} workspace lock graph vs. declared order {}",
        xtask::lock_order::RULE,
        xtask::lock_order::DECLARED_ORDER.join(" -> ")
    );
    eprintln!();
    eprintln!("suppress with `// pcm-lint: allow(<rule>)` plus a justification;");
    eprintln!("`--audit-allows` fails on suppressions whose rule no longer fires");
}

/// The workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn trace_report(args: &[String]) -> ExitCode {
    let mut opts = xtask::trace_report::Options::default();
    let mut file: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--top" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.top = n,
                _ => {
                    eprintln!("trace-report: --top needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if file.is_none() => file = Some(other),
            other => {
                eprintln!("trace-report: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = file else {
        eprintln!("trace-report: no trace file given");
        usage();
        return ExitCode::from(2);
    };
    match xtask::trace_report::report_file(path, &opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn obs_report(args: &[String]) -> ExitCode {
    let mut opts = xtask::obs_report::Options::default();
    let mut file: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--top" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.top = n,
                _ => {
                    eprintln!("obs-report: --top needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if file.is_none() => file = Some(other),
            other => {
                eprintln!("obs-report: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = file else {
        eprintln!("obs-report: no telemetry file given");
        usage();
        return ExitCode::from(2);
    };
    match xtask::obs_report::report_file(path, &opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn profile_report(args: &[String]) -> ExitCode {
    let mut opts = xtask::profile_report::Options::default();
    let mut file: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--folded" => opts.folded = true,
            "--top" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.top = n,
                _ => {
                    eprintln!("profile-report: --top needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if file.is_none() => file = Some(other),
            other => {
                eprintln!("profile-report: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = file else {
        eprintln!("profile-report: no trace file given");
        usage();
        return ExitCode::from(2);
    };
    match xtask::profile_report::report_file(path, &opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("profile-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut files: Vec<&str> = Vec::new();
    let mut tolerance = xtask::bench_diff::TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--max-drop-pct" => {
                let Some(raw) = it.next() else {
                    eprintln!("bench-diff: --max-drop-pct needs a value");
                    return ExitCode::from(2);
                };
                match xtask::bench_diff::parse_tolerance(raw) {
                    Ok(pct) => tolerance = pct,
                    Err(e) => {
                        eprintln!("bench-diff: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => files.push(other),
        }
    }
    let [old, new] = files[..] else {
        eprintln!("bench-diff: want exactly two files (old.json new.json)");
        usage();
        return ExitCode::from(2);
    };
    match xtask::bench_diff::diff_files_with(old, new, tolerance) {
        Ok(diff) => {
            print!("{}", diff.render_text());
            if diff.regressions().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench-diff: {e}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut audit = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--audit-allows" => audit = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    let root = workspace_root();
    if audit {
        if !files.is_empty() {
            eprintln!("pcm-lint: --audit-allows takes no file arguments");
            return ExitCode::from(2);
        }
        return audit_allows(&root, json);
    }
    let diags = if files.is_empty() {
        match xtask::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("pcm-lint: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for path in &files {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pcm-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let rel = path.to_string_lossy().replace('\\', "/");
            // Explicit files get the strictest scope: treat them as
            // library+determinism+locking code so every rule can fire.
            out.extend(xtask::lint_source(&rel, "pcm-device", &src));
        }
        out
    };

    if json {
        println!("{}", xtask::json_document(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        eprintln!("pcm-lint: clean");
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.file.as_str()).collect();
        eprintln!(
            "pcm-lint: {} diagnostic(s) across {} file(s)",
            diags.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// `cargo lint --audit-allows`: fail (exit 1) when any suppression is
/// stale, so CI keeps the allow list shrinking monotonically.
fn audit_allows(root: &Path, json: bool) -> ExitCode {
    let (total, stale) = match xtask::audit_allows(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pcm-lint: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", xtask::audit_json_document(total, &stale));
    } else {
        for s in &stale {
            println!("{s}");
        }
    }
    if stale.is_empty() {
        eprintln!("pcm-lint: all {total} allow suppression(s) are live");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "pcm-lint: {} of {total} allow suppression(s) are stale",
            stale.len()
        );
        ExitCode::FAILURE
    }
}
