//! `lock-discipline`: multi-bank locking goes through the canonical
//! sorted-acquisition helper.
//!
//! The sharded engine (PR 1) holds one `Mutex<PcmBank>` per bank. Any
//! function that acquires two or more guards ad hoc can deadlock with a
//! sibling acquiring them in the opposite order. The canonical pattern is
//! `ShardedPcmDevice::lock_pair_ordered`, which always locks the
//! lower-numbered bank first; this rule flags every non-test function in
//! the locking crates whose body performs two or more acquisitions
//! (`.lock(…)` calls or the `lock_bank` poison-handling wrapper) without
//! routing through that helper.
//!
//! This is a lexical rule: sequential acquire-release pairs inside one
//! function (e.g. lock bank A, drop, lock bank B) are flagged too —
//! either restructure to a single acquisition, use the helper, or add an
//! allow comment stating why ordering cannot invert.

use super::{Rule, LOCK_CRATES};
use crate::source::SourceFile;
use crate::Diagnostic;

pub struct LockDiscipline;

/// The canonical helper; a function with this name, or calling it, may
/// acquire multiple guards.
const CANONICAL_HELPER: &str = "lock_pair_ordered";
/// The repo's poison-handling single-acquisition wrapper. Calls to it
/// count as acquisitions; its own body is exempt.
const ACQUIRE_WRAPPER: &str = "lock_bank";

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn describe(&self) -> &'static str {
        "flag functions acquiring 2+ Mutex guards without the sorted-acquisition helper"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !LOCK_CRATES.contains(&f.crate_name.as_str()) {
            return;
        }
        for span in &f.fns {
            if span.in_test
                || span.name == CANONICAL_HELPER
                || span.name == ACQUIRE_WRAPPER
                || span.body_start >= span.end
            {
                continue;
            }
            let mut acquisitions = Vec::new();
            let mut routes_through_helper = false;
            for i in span.body_start..span.end {
                let direct_lock =
                    f.is_ident(i, "lock") && f.is_punct(i + 1, "(") && f.is_punct(i - 1, ".");
                let wrapped_lock = f.is_ident(i, ACQUIRE_WRAPPER) && f.is_punct(i + 1, "(");
                if direct_lock || wrapped_lock {
                    acquisitions.push(i);
                } else if f.is_ident(i, CANONICAL_HELPER) {
                    routes_through_helper = true;
                }
            }
            if acquisitions.len() >= 2 && !routes_through_helper {
                let t = &f.code[acquisitions[1]];
                out.push(Diagnostic {
                    rule: self.id(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "fn `{}` performs {} lock acquisitions without the canonical ordered \
                         helper",
                        span.name,
                        acquisitions.len()
                    ),
                    suggestion: "route multi-bank acquisition through \
                                 ShardedPcmDevice::lock_pair_ordered (locks ascend by bank id), \
                                 restructure to one acquisition, or add `// pcm-lint: \
                                 allow(lock-discipline)` proving the order cannot invert"
                        .to_string(),
                });
            }
        }
    }
}
