//! `no-float-tick`: scheduler deadlines advance on integer ticks.
//!
//! PR 2 fixed a drift bug where `RefreshController::run_until` advanced
//! `next_due` by repeated `f64` addition — after ~1e7 steps the
//! accumulated rounding error shifted scrub launches, changing error
//! counts between runs of different lengths. The fix computes every
//! deadline as `tick as f64 * step` from an integer tick. This rule
//! forbids re-introducing float *accumulation* into any variable named
//! like a schedule point (`*tick*`, `*due*`, `*deadline*`) in scheduler
//! code (files whose name contains `scrub`, `refresh`, `sched`, or
//! `tick`).

use super::Rule;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Diagnostic;
use std::collections::BTreeSet;

pub struct NoFloatTick;

const NAME_KEYS: &[&str] = &["tick", "due", "deadline"];

fn is_schedule_name(name: &str) -> bool {
    let lower = name.to_lowercase();
    NAME_KEYS.iter().any(|k| lower.contains(k))
}

fn file_in_scope(rel: &str) -> bool {
    let stem = rel.rsplit('/').next().unwrap_or(rel).to_lowercase();
    ["scrub", "refresh", "sched", "tick"]
        .iter()
        .any(|k| stem.contains(k))
}

impl Rule for NoFloatTick {
    fn id(&self) -> &'static str {
        "no-float-tick"
    }

    fn describe(&self) -> &'static str {
        "forbid f32/f64 accumulation into *tick*/*due*/*deadline* variables in scheduler code"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file_in_scope(&f.rel) {
            return;
        }
        // Pass 1: names with float type ascriptions (`name: f64`) or
        // float-literal initializers (`let [mut] name = 1.0`).
        let mut float_names: BTreeSet<&str> = BTreeSet::new();
        for i in 0..f.code.len() {
            if f.code[i].kind != TokKind::Ident {
                continue;
            }
            if f.is_punct(i + 1, ":") && (f.is_ident(i + 2, "f64") || f.is_ident(i + 2, "f32")) {
                float_names.insert(f.code[i].text.as_str());
            }
            if f.code[i].text == "let" {
                let name_at = if f.is_ident(i + 1, "mut") {
                    i + 2
                } else {
                    i + 1
                };
                if f.tok(name_at).is_some_and(|t| t.kind == TokKind::Ident)
                    && f.is_punct(name_at + 1, "=")
                    && f.tok(name_at + 2)
                        .is_some_and(|t| t.kind == TokKind::FloatLit)
                {
                    float_names.insert(f.code[name_at].text.as_str());
                }
            }
        }
        // Pass 2: flag float accumulation into schedule-point names.
        for i in 0..f.code.len() {
            if f.in_test[i] || f.code[i].kind != TokKind::Ident {
                continue;
            }
            let name = f.code[i].text.as_str();
            if !is_schedule_name(name) {
                continue;
            }
            let flagged = if f.is_punct(i + 1, "+=") {
                float_names.contains(name) || rhs_is_floaty(f, i + 2, &float_names)
            } else if f.is_punct(i + 1, "=") {
                // `name = … name + …` self-accumulation.
                let mut has_self = false;
                let mut has_plus = false;
                let mut j = i + 2;
                while let Some(t) = f.tok(j) {
                    if t.kind == TokKind::Punct && (t.text == ";" || t.text == "{") {
                        break;
                    }
                    has_self |= t.kind == TokKind::Ident && t.text == name;
                    has_plus |= t.kind == TokKind::Punct && t.text == "+";
                    j += 1;
                }
                has_self
                    && has_plus
                    && (float_names.contains(name) || rhs_is_floaty(f, i + 2, &float_names))
            } else {
                false
            };
            if flagged {
                let t = &f.code[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "float accumulation into schedule point `{name}` drifts over long \
                         horizons"
                    ),
                    suggestion: "advance an integer tick counter and derive the deadline as \
                                 `tick as f64 * step` (see RefreshController::run_until)"
                        .to_string(),
                });
            }
        }
    }
}

/// Does the expression from `start` to the next `;` involve floats? True
/// when it contains a float literal, an `as f64`/`as f32` cast, or a
/// name known to be float-typed.
fn rhs_is_floaty(f: &SourceFile, start: usize, float_names: &BTreeSet<&str>) -> bool {
    let mut j = start;
    while let Some(t) = f.tok(j) {
        if t.kind == TokKind::Punct && t.text == ";" {
            break;
        }
        match t.kind {
            TokKind::FloatLit => return true,
            TokKind::Ident if t.text == "f64" || t.text == "f32" => return true,
            TokKind::Ident if float_names.contains(t.text.as_str()) => return true,
            _ => {}
        }
        j += 1;
    }
    false
}
