//! `no-panic-lib`: library crates must return typed errors, not panic.
//!
//! PR 1 introduced `PcmError`/`ConfigError` and PR 2 `TraceParseError`
//! precisely so callers never hit a panic on a fallible path. This rule
//! keeps that promise: `unwrap()`, `expect(…)`, `panic!` and `assert!`
//! are forbidden in non-test code of the library crates. Genuinely
//! infallible uses carry a `// pcm-lint: allow(no-panic-lib)` comment
//! stating the invariant; `debug_assert!` (compiled out of release
//! builds) is always fine.

use super::{Rule, LIB_CRATES};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Diagnostic;

pub struct NoPanicLib;

impl Rule for NoPanicLib {
    fn id(&self) -> &'static str {
        "no-panic-lib"
    }

    fn describe(&self) -> &'static str {
        "forbid unwrap()/expect()/panic!/assert! in non-test library code"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !LIB_CRATES.contains(&f.crate_name.as_str()) {
            return;
        }
        for i in 0..f.code.len() {
            if f.in_test[i] || f.code[i].kind != TokKind::Ident {
                continue;
            }
            let t = &f.code[i];
            let (what, suggestion) = match t.text.as_str() {
                "unwrap" | "expect"
                    if f.is_punct(i + 1, "(") && i > 0 && f.is_punct(i - 1, ".") =>
                {
                    (
                        format!("`.{}(…)` can panic at runtime", t.text),
                        "return a typed error (PcmError / ConfigError / TraceParseError), use \
                         unwrap_or / ok_or, or add `// pcm-lint: allow(no-panic-lib)` with the \
                         invariant that makes this infallible",
                    )
                }
                "panic" | "assert" if f.is_punct(i + 1, "!") => (
                    format!("`{}!` in library code panics the caller", t.text),
                    "return a typed error on fallible paths; for true invariants use \
                     debug_assert! or add `// pcm-lint: allow(no-panic-lib)` with a one-line \
                     justification",
                ),
                _ => continue,
            };
            out.push(Diagnostic {
                rule: self.id(),
                file: f.rel.clone(),
                line: t.line,
                col: t.col,
                message: what,
                suggestion: suggestion.to_string(),
            });
        }
    }
}
