//! `no-deprecated-internal`: the deprecated positional constructors are
//! shims, not an API.
//!
//! PR 1 deprecated `PcmDevice::new` / `PcmDevice::with_endurance` in
//! favor of `DeviceBuilder`, and PR 2 migrated every internal caller to
//! the shared `from_legacy_args` body. This rule keeps the workspace off
//! the shims for good: outside the file that defines them, non-test code
//! may neither call them nor blanket-suppress the deprecation with
//! `#[allow(deprecated)]` (which would also hide *future* deprecations
//! at that site).

use super::Rule;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Diagnostic;

pub struct NoDeprecatedInternal;

/// The deprecated positional constructors.
const DEPRECATED_CTORS: &[&str] = &["new", "with_endurance"];
/// The file defining the shims (and the one place allowed to mention
/// them in code).
const SHIM_FILE: &str = "pcm-device/src/device.rs";

impl Rule for NoDeprecatedInternal {
    fn id(&self) -> &'static str {
        "no-deprecated-internal"
    }

    fn describe(&self) -> &'static str {
        "forbid the deprecated positional constructors (and allow(deprecated)) outside the shims"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if f.rel.ends_with(SHIM_FILE) {
            return;
        }
        for i in 0..f.code.len() {
            if f.in_test[i] {
                continue;
            }
            let t = &f.code[i];
            // `PcmDevice::new(…)` / `PcmDevice::with_endurance(…)`.
            if t.kind == TokKind::Ident
                && t.text == "PcmDevice"
                && f.is_punct(i + 1, "::")
                && f.tok(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && DEPRECATED_CTORS.contains(&n.text.as_str())
                })
                && f.is_punct(i + 3, "(")
            {
                let name = &f.code[i + 2].text;
                out.push(Diagnostic {
                    rule: self.id(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "call to deprecated positional constructor `PcmDevice::{name}`"
                    ),
                    suggestion: "construct through PcmDevice::builder() / DeviceBuilder, which \
                                 reports ConfigError instead of panicking"
                        .to_string(),
                });
            }
            // `#[allow(deprecated)]` outside the shim file.
            if t.kind == TokKind::Punct
                && t.text == "#"
                && f.is_punct(i + 1, "[")
                && f.is_ident(i + 2, "allow")
                && f.is_punct(i + 3, "(")
                && f.is_ident(i + 4, "deprecated")
            {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`#[allow(deprecated)]` suppression outside the legacy shims"
                        .to_string(),
                    suggestion: "migrate the call site to DeviceBuilder; deprecation \
                                 suppressions live only in pcm-device/src/device.rs"
                        .to_string(),
                });
            }
        }
    }
}
