//! `no-deprecated-internal`: the workspace ships no deprecated API.
//!
//! PR 1 deprecated the positional `PcmDevice` constructors behind
//! `#[deprecated]` shims; PR 6 deleted them, making `DeviceBuilder` the
//! only construction path and the public surface deprecation-free. This
//! rule keeps it that way: non-test code may neither introduce a new
//! `#[deprecated]` item (deprecation cycles don't exist inside one
//! workspace — delete or redesign instead) nor blanket-suppress
//! deprecation warnings with `#[allow(deprecated)]` (which would also
//! hide deprecations from future dependency upgrades).

use super::Rule;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Diagnostic;

pub struct NoDeprecatedInternal;

impl Rule for NoDeprecatedInternal {
    fn id(&self) -> &'static str {
        "no-deprecated-internal"
    }

    fn describe(&self) -> &'static str {
        "forbid #[deprecated] items and #[allow(deprecated)] suppressions in non-test code"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..f.code.len() {
            if f.in_test[i] {
                continue;
            }
            let t = &f.code[i];
            if t.kind != TokKind::Punct || t.text != "#" || !f.is_punct(i + 1, "[") {
                continue;
            }
            // `#[deprecated]` / `#[deprecated(since = …)]`.
            if f.is_ident(i + 2, "deprecated") {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`#[deprecated]` item in the workspace".to_string(),
                    suggestion: "the workspace carries no deprecation shims: delete the old \
                                 surface and migrate its callers in the same PR (see the \
                                 DeviceBuilder migration)"
                        .to_string(),
                });
            }
            // `#[allow(deprecated)]`.
            if f.is_ident(i + 2, "allow")
                && f.is_punct(i + 3, "(")
                && f.is_ident(i + 4, "deprecated")
            {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`#[allow(deprecated)]` suppression in non-test code".to_string(),
                    suggestion: "migrate the call site off the deprecated API instead of \
                                 suppressing the warning"
                        .to_string(),
                });
            }
        }
    }
}
