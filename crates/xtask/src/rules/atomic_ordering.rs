//! `atomic-ordering`: every `Ordering::*` site is classified and
//! checked — the gate ROADMAP item 2 (lock-free banks) requires before
//! any per-bank `Mutex` becomes CAS/seqlock state.
//!
//! The workspace's atomics fall into three roles:
//!
//! * **counters** — metrics registries where `Relaxed` is correct
//!   because nobody reads a counter to synchronize. A whole module
//!   opts in with a `// pcm-lint: atomic-module(counters)` comment.
//! * **job claims** — `fetch_add` tickets handing out disjoint work
//!   (the parallel sim's job index, the trace ring's sequence ticket).
//!   `Relaxed` is correct because a join/scope barrier publishes the
//!   results. Annotated per site: `// pcm-lint: atomic(job-claim)` or
//!   `// pcm-lint: atomic(counter)`.
//! * **seqlock words** — the trace ring's `version`/payload protocol.
//!   Writes must publish with `Release`, reads must observe with
//!   `Acquire`; one `Relaxed` on either path silently breaks the
//!   protocol on weakly-ordered hardware while passing every x86 test.
//!   Seqlock fields are *inferred*: any field Release-stored and
//!   Acquire-loaded in the same file is held to the pairing, and may
//!   also be pinned explicitly with `// pcm-lint: atomic(seqlock)`.
//!
//! Everything else is general synchronization: bare `Relaxed` is
//! banned (classify the site or strengthen the ordering), and
//! nonsensical combinations (`store(…, Acquire)`, `load(Release)` —
//! which panic at runtime) are flagged statically.

use super::{Rule, DETERMINISM_CRATES};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

pub struct AtomicOrdering;

/// The `std::sync::atomic::Ordering` variants (distinguishes the type
/// from `std::cmp::Ordering`, whose variants never overlap).
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic access methods, split by direction.
const LOAD_METHODS: &[&str] = &["load"];
const STORE_METHODS: &[&str] = &["store"];
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];

/// Valid per-site annotation classes.
const CLASSES: &[&str] = &["counter", "job-claim", "seqlock"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Load,
    Store,
    Rmw,
    Unknown,
}

struct Site {
    /// Token index of the `Ordering` ident.
    tok: usize,
    /// The ordering variant.
    ordering: String,
    /// Access direction of the enclosing call.
    dir: Dir,
    /// Receiver field (or binding) name, best effort.
    field: String,
}

impl Rule for AtomicOrdering {
    fn id(&self) -> &'static str {
        "atomic-ordering"
    }

    fn describe(&self) -> &'static str {
        "classify every Ordering::* site; ban bare Relaxed outside annotated counter/job-claim \
         sites and enforce Acquire/Release pairing on seqlock words"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !DETERMINISM_CRATES.contains(&f.crate_name.as_str()) {
            return;
        }
        let module_counters = f
            .comments
            .iter()
            .any(|c| c.text.contains("pcm-lint: atomic-module(counters)"));
        let site_classes = collect_site_annotations(f);

        let sites = find_sites(f);
        // Infer seqlock words: fields both Release-published and
        // Acquire-observed in this file.
        let mut released: BTreeSet<&str> = BTreeSet::new();
        let mut acquired: BTreeSet<&str> = BTreeSet::new();
        for s in &sites {
            let strong = matches!(s.ordering.as_str(), "Release" | "AcqRel" | "SeqCst");
            match s.dir {
                Dir::Store | Dir::Rmw if strong => {
                    released.insert(&s.field);
                }
                Dir::Load if matches!(s.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst") => {
                    acquired.insert(&s.field);
                }
                _ => {}
            }
        }
        let seqlock_fields: BTreeSet<&str> = released.intersection(&acquired).copied().collect();

        for s in &sites {
            let t = &f.code[s.tok];
            if f.in_test.get(s.tok).copied().unwrap_or(false) {
                continue;
            }
            // Statically impossible combinations panic at runtime.
            let nonsense = matches!(
                (s.dir, s.ordering.as_str()),
                (Dir::Store, "Acquire" | "AcqRel") | (Dir::Load, "Release" | "AcqRel")
            );
            if nonsense {
                out.push(diag(
                    f,
                    t.line,
                    t.col,
                    format!(
                        "`{}` with `Ordering::{}` on `{}` panics at runtime",
                        dir_name(s.dir),
                        s.ordering,
                        s.field
                    ),
                    "stores release (Release/Relaxed/SeqCst), loads acquire \
                     (Acquire/Relaxed/SeqCst); pick a legal ordering"
                        .to_string(),
                ));
                continue;
            }
            let annotated = site_classes
                .get(&t.line)
                .or_else(|| site_classes.get(&t.line.saturating_sub(1)));
            let class: Option<&str> = match annotated {
                Some(c) if CLASSES.contains(&c.as_str()) => Some(c.as_str()),
                Some(c) => {
                    out.push(diag(
                        f,
                        t.line,
                        t.col,
                        format!("unknown atomic class `{c}` in annotation"),
                        format!("valid classes: {}", CLASSES.join(", ")),
                    ));
                    continue;
                }
                None if module_counters => Some("counter"),
                None if seqlock_fields.contains(s.field.as_str()) => Some("seqlock"),
                None => None,
            };
            match class {
                Some("counter") | Some("job-claim") => {} // Relaxed is the point
                Some("seqlock") => {
                    let ok = match s.dir {
                        Dir::Load => matches!(s.ordering.as_str(), "Acquire" | "SeqCst"),
                        Dir::Store => matches!(s.ordering.as_str(), "Release" | "SeqCst"),
                        Dir::Rmw | Dir::Unknown => s.ordering != "Relaxed",
                    };
                    if !ok {
                        out.push(diag(
                            f,
                            t.line,
                            t.col,
                            format!(
                                "seqlock word `{}` {} with `Ordering::{}` breaks the \
                                 Acquire/Release pairing",
                                s.field,
                                dir_name(s.dir),
                                s.ordering
                            ),
                            "seqlock writes publish with Release, reads observe with Acquire; \
                             a Relaxed access reorders the payload around the version word"
                                .to_string(),
                        ));
                    }
                }
                Some(_) => unreachable!("classes are filtered above"),
                None => {
                    if s.ordering == "Relaxed" {
                        out.push(diag(
                            f,
                            t.line,
                            t.col,
                            format!(
                                "bare `Ordering::Relaxed` on `{}` outside an annotated counter \
                                 module",
                                s.field
                            ),
                            "classify the site (`// pcm-lint: atomic(counter)`, \
                             `atomic(job-claim)`, `atomic(seqlock)`), mark the module \
                             `// pcm-lint: atomic-module(counters)`, or use Acquire/Release"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}

fn dir_name(d: Dir) -> &'static str {
    match d {
        Dir::Load => "load",
        Dir::Store => "store",
        Dir::Rmw => "read-modify-write",
        Dir::Unknown => "access",
    }
}

/// `// pcm-lint: atomic(<class>)` comments, by line.
fn collect_site_annotations(f: &SourceFile) -> BTreeMap<u32, String> {
    let mut map = BTreeMap::new();
    for c in &f.comments {
        let Some(at) = c.text.find("pcm-lint: atomic(") else {
            continue;
        };
        let rest = &c.text[at + "pcm-lint: atomic(".len()..];
        if let Some(close) = rest.find(')') {
            map.insert(c.line, rest[..close].trim().to_string());
        }
    }
    map
}

/// Locate every `Ordering::<variant>` site with its access direction
/// and receiver field.
fn find_sites(f: &SourceFile) -> Vec<Site> {
    let mut out = Vec::new();
    for i in 0..f.code.len() {
        if !f.is_ident(i, "Ordering") || !f.is_punct(i + 1, "::") {
            continue;
        }
        let Some(var) = f.tok(i + 2) else { continue };
        if var.kind != TokKind::Ident || !ORDERINGS.contains(&var.text.as_str()) {
            continue;
        }
        let (dir, field) = enclosing_access(f, i);
        out.push(Site {
            tok: i,
            ordering: var.text.clone(),
            dir,
            field,
        });
    }
    out
}

/// Walk back from an `Ordering` token to the nearest atomic access
/// method call, returning its direction and receiver field name.
fn enclosing_access(f: &SourceFile, ord_tok: usize) -> (Dir, String) {
    let lo = ord_tok.saturating_sub(60);
    for j in (lo..ord_tok).rev() {
        let Some(t) = f.tok(j) else { continue };
        if t.kind != TokKind::Ident
            || !f.is_punct(j + 1, "(")
            || !f.is_punct(j.wrapping_sub(1), ".")
        {
            continue;
        }
        let name = t.text.as_str();
        let dir = if LOAD_METHODS.contains(&name) {
            Dir::Load
        } else if STORE_METHODS.contains(&name) {
            Dir::Store
        } else if RMW_METHODS.contains(&name) {
            Dir::Rmw
        } else {
            continue;
        };
        return (dir, receiver_field(f, j));
    }
    (Dir::Unknown, "_".to_string())
}

/// The field (or binding) an atomic method was called on:
/// `self.buckets[i].fetch_add(…)` → `buckets`, `slot.version.load(…)`
/// → `version`.
fn receiver_field(f: &SourceFile, method_tok: usize) -> String {
    // method_tok - 1 is the `.`; walk left over an optional `[…]` index.
    let mut k = method_tok.wrapping_sub(2);
    if f.is_punct(k, "]") {
        let mut depth = 0isize;
        while k > 0 {
            match f.tok(k).map(|t| t.text.as_str()) {
                Some("]") => depth += 1,
                Some("[") => {
                    depth -= 1;
                    if depth == 0 {
                        k = k.wrapping_sub(1);
                        break;
                    }
                }
                _ => {}
            }
            k = k.wrapping_sub(1);
        }
    }
    match f.tok(k) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => "_".to_string(),
    }
}

fn diag(f: &SourceFile, line: u32, col: u32, message: String, suggestion: String) -> Diagnostic {
    Diagnostic {
        rule: "atomic-ordering",
        file: f.rel.clone(),
        line,
        col,
        message,
        suggestion,
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;

    #[test]
    fn bare_relaxed_is_flagged_and_annotations_clear_it() {
        let bad = "fn f(n: &AtomicU64) -> u64 {\n    n.fetch_add(1, Ordering::Relaxed)\n}\n";
        let diags = lint_source("a.rs", "pcm-sim", bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "atomic-ordering");
        assert_eq!(diags[0].line, 2);

        let good = "fn f(n: &AtomicU64) -> u64 {\n    // pcm-lint: atomic(job-claim)\n    n.fetch_add(1, Ordering::Relaxed)\n}\n";
        assert!(lint_source("a.rs", "pcm-sim", good).is_empty());
    }

    #[test]
    fn counters_module_annotation_permits_relaxed() {
        let src = "//! Counters.\n// pcm-lint: atomic-module(counters)\nfn f(n: &AtomicU64) {\n    n.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_source("m.rs", "pcm-device", src).is_empty());
    }

    #[test]
    fn inferred_seqlock_word_rejects_relaxed_on_either_path() {
        let src = "\
            fn publish(s: &Slot) {\n\
                s.version.store(1, Ordering::Release);\n\
            }\n\
            fn read_ok(s: &Slot) -> u64 {\n\
                s.version.load(Ordering::Acquire)\n\
            }\n\
            fn read_bad(s: &Slot) -> u64 {\n\
                s.version.load(Ordering::Relaxed)\n\
            }\n";
        let diags = lint_source("b.rs", "pcm-trace", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("seqlock word `version`"));
        assert_eq!(diags[0].line, 8);
    }

    #[test]
    fn runtime_panicking_orderings_are_flagged() {
        let src = "fn f(n: &AtomicU64) {\n    n.store(1, Ordering::Acquire);\n}\n";
        let diags = lint_source("c.rs", "pcm-core", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("panics at runtime"));
    }

    #[test]
    fn cmp_ordering_is_not_confused_with_atomic_ordering() {
        let src = "fn f(a: u32, b: u32) -> Ordering {\n    a.cmp(&b)\n}\nfn g() -> Ordering { Ordering::Less }\n";
        assert!(lint_source("d.rs", "pcm-core", src).is_empty());
    }

    #[test]
    fn unknown_class_annotation_is_flagged() {
        let src = "fn f(n: &AtomicU64) {\n    // pcm-lint: atomic(mystery)\n    n.store(1, Ordering::Relaxed);\n}\n";
        let diags = lint_source("e.rs", "pcm-core", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unknown atomic class `mystery`"));
    }

    #[test]
    fn indexed_receivers_resolve_to_the_field() {
        let src =
            "fn f(s: &S, i: usize) {\n    s.buckets[i * 2].fetch_add(1, Ordering::Relaxed);\n}\n";
        let diags = lint_source("f.rs", "pcm-device", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`buckets`"), "{diags:?}");
    }
}
