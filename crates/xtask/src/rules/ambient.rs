//! `no-ambient-nondeterminism`: simulation results are a pure function
//! of the seed.
//!
//! Reproduced error-rate numbers (Figure 16, the scrub tax, the
//! proptest cross-validation of sharded vs. sequential engines) are only
//! meaningful if a run can be replayed bit-for-bit from its seed. In the
//! core/device/sim crates this rule forbids wall-clock reads
//! (`Instant::now`, `SystemTime`), process-environment reads
//! (`std::env`), entropy-based RNGs (`thread_rng`, `OsRng`,
//! `from_entropy`, `getrandom`), and ad-hoc RNG construction: every
//! generator must either come from `pcm_core::rng`'s stream-derivation
//! API (`Xoshiro256pp::split` / `stream_seed`) or carry an allow comment
//! documenting where its seed flows from.

use super::{Rule, DETERMINISM_CRATES};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Diagnostic;

pub struct NoAmbientNondeterminism;

const ENTROPY_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy", "getrandom"];
const ENV_READS: &[&str] = &["var", "vars", "var_os", "args", "args_os"];

impl Rule for NoAmbientNondeterminism {
    fn id(&self) -> &'static str {
        "no-ambient-nondeterminism"
    }

    fn describe(&self) -> &'static str {
        "forbid wall-clock, env, and non-canonical RNG construction in core/device/sim"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !DETERMINISM_CRATES.contains(&f.crate_name.as_str()) {
            return;
        }
        // `pcm_core::rng` is the one module allowed to define and seed
        // generators directly.
        let is_rng_home = f.rel.ends_with("pcm-core/src/rng.rs");
        for i in 0..f.code.len() {
            if f.in_test[i] || f.code[i].kind != TokKind::Ident {
                continue;
            }
            let t = &f.code[i];
            let (message, suggestion) = match t.text.as_str() {
                "Instant" if f.is_punct(i + 1, "::") && f.is_ident(i + 2, "now") => (
                    "`Instant::now()` makes results depend on wall-clock scheduling".to_string(),
                    "derive timing from the simulated clock (device `now()` / integer ticks); \
                     wall-clock belongs in bench code only",
                ),
                "SystemTime" => (
                    "`SystemTime` reads the host clock, breaking seed-reproducibility".to_string(),
                    "thread simulated time through explicitly; wall-clock belongs in bench code \
                     only",
                ),
                "std" if f.is_punct(i + 1, "::") && f.is_ident(i + 2, "env") => (
                    "`std::env` makes results depend on the process environment".to_string(),
                    "pass configuration through SimParams/DeviceBuilder so runs replay from \
                     their recorded inputs",
                ),
                "env"
                    if f.is_punct(i + 1, "::")
                        && f.tok(i + 2)
                            .is_some_and(|n| ENV_READS.contains(&n.text.as_str())) =>
                {
                    (
                        "environment read makes results depend on the process environment"
                            .to_string(),
                        "pass configuration through SimParams/DeviceBuilder so runs replay from \
                         their recorded inputs",
                    )
                }
                id if ENTROPY_IDENTS.contains(&id) => (
                    format!("`{id}` draws OS entropy; results become unreproducible"),
                    "seed a pcm_core::rng::Xoshiro256pp from an explicit u64 carried in the \
                     config",
                ),
                "seed_from_u64" if !is_rng_home => (
                    "direct RNG construction outside pcm_core::rng bypasses the stream-identity \
                     discipline"
                        .to_string(),
                    "derive the stream with Xoshiro256pp::split / stream_seed(seed, index), or \
                     add `// pcm-lint: allow(no-ambient-nondeterminism)` documenting where the \
                     seed flows from",
                ),
                _ => continue,
            };
            out.push(Diagnostic {
                rule: self.id(),
                file: f.rel.clone(),
                line: t.line,
                col: t.col,
                message,
                suggestion: suggestion.to_string(),
            });
        }
    }
}
