//! The `pcm-lint` rule set.
//!
//! Each rule enforces one repo-specific invariant introduced by an
//! earlier PR (see DESIGN.md §15 for the full table). Rules operate on a
//! [`SourceFile`] token stream and emit [`Diagnostic`]s; the engine
//! filters out spans covered by a `// pcm-lint: allow(<rule>)` comment.
//!
//! Per-file rules implement [`Rule`]. The inter-procedural `lock-order`
//! analysis (`crate::lock_order`) runs over the whole-workspace item
//! model instead — it shares the diagnostic format and allow machinery
//! but not this trait, because it cannot be computed one file at a
//! time.

use crate::source::SourceFile;
use crate::Diagnostic;

mod ambient;
mod atomic_ordering;
mod deprecated_internal;
mod float_tick;
mod panic_lib;

/// A single per-file lint rule.
pub trait Rule {
    /// Stable rule id, as used in diagnostics and allow comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list` style output and docs.
    fn describe(&self) -> &'static str;
    /// Scan one file, pushing diagnostics.
    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every registered per-file rule, in diagnostic-id order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_lib::NoPanicLib),
        Box::new(float_tick::NoFloatTick),
        Box::new(ambient::NoAmbientNondeterminism),
        Box::new(atomic_ordering::AtomicOrdering),
        Box::new(deprecated_internal::NoDeprecatedInternal),
    ]
}

/// Every rule id a `// pcm-lint: allow(<rule>)` comment may name:
/// the per-file rules plus the workspace-level `lock-order` analysis.
/// The suppression audit flags allows naming anything else (including
/// ids of rules that have since been removed, like `lock-discipline`).
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all().iter().map(|r| r.id()).collect();
    ids.push(crate::lock_order::RULE);
    ids.sort_unstable();
    ids
}

/// The library crates whose non-test code must not panic.
pub const LIB_CRATES: &[&str] = &[
    "pcm-core",
    "pcm-device",
    "pcm-sim",
    "pcm-store",
    "pcm-trace",
    "pcm-telemetry",
    "pcm-ecc",
    "pcm-codec",
    "pcm-wearout",
];

/// The crates whose results must be a pure function of the seed.
/// `pcm-ecc` joined when the bit-sliced batch kernels landed: decode
/// results feed the determinism gates, so its table registry and batch
/// paths must stay free of ambient entropy and clocks too.
/// `pcm-telemetry` joined with the time-series layer: its sample ticks
/// and risk estimators feed a byte-identical CI oracle, so they must be
/// a pure function of the observation sequence.
pub const DETERMINISM_CRATES: &[&str] = &[
    "pcm-core",
    "pcm-device",
    "pcm-sim",
    "pcm-store",
    "pcm-trace",
    "pcm-telemetry",
    "pcm-ecc",
];

/// The crates that hold locks. `pcm-ecc` joined with its shared-table
/// registries (`bch_registry`/`gf_registry`), which nest under the
/// store's stripe/allocator/bank guards when decode runs inside a
/// serving path — so the lock-order analysis must see them.
/// `pcm-telemetry` joined with the series recorder's state mutex
/// (`lock_series`), the innermost `telemetry` class: it is taken from
/// `advance_time` while no other workspace lock is held, and holds while
/// emitting trace instants (lock-free ring pushes).
pub const LOCK_CRATES: &[&str] = &[
    "pcm-device",
    "pcm-sim",
    "pcm-store",
    "pcm-ecc",
    "pcm-telemetry",
];
