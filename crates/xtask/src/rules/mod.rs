//! The `pcm-lint` rule set.
//!
//! Each rule enforces one repo-specific invariant introduced by an
//! earlier PR (see DESIGN.md §11 for the full table). Rules operate on a
//! [`SourceFile`] token stream and emit [`Diagnostic`]s; the engine
//! filters out spans covered by a `// pcm-lint: allow(<rule>)` comment.

use crate::source::SourceFile;
use crate::Diagnostic;

mod ambient;
mod deprecated_internal;
mod float_tick;
mod lock_discipline;
mod panic_lib;

/// A single lint rule.
pub trait Rule {
    /// Stable rule id, as used in diagnostics and allow comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list` style output and docs.
    fn describe(&self) -> &'static str;
    /// Scan one file, pushing diagnostics.
    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in diagnostic-id order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_lib::NoPanicLib),
        Box::new(float_tick::NoFloatTick),
        Box::new(ambient::NoAmbientNondeterminism),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(deprecated_internal::NoDeprecatedInternal),
    ]
}

/// The library crates whose non-test code must not panic.
pub const LIB_CRATES: &[&str] = &[
    "pcm-core",
    "pcm-device",
    "pcm-sim",
    "pcm-store",
    "pcm-trace",
    "pcm-ecc",
    "pcm-codec",
    "pcm-wearout",
];

/// The crates whose results must be a pure function of the seed.
/// `pcm-ecc` joined when the bit-sliced batch kernels landed: decode
/// results feed the determinism gates, so its table registry and batch
/// paths must stay free of ambient entropy and clocks too.
pub const DETERMINISM_CRATES: &[&str] = &[
    "pcm-core",
    "pcm-device",
    "pcm-sim",
    "pcm-store",
    "pcm-trace",
    "pcm-ecc",
];

/// The crates that take bank locks.
pub const LOCK_CRATES: &[&str] = &["pcm-device", "pcm-sim", "pcm-store"];
