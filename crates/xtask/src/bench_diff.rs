//! The `bench-diff` subcommand: compare two bench JSON documents
//! (e.g. `BENCH_store.json` from the base branch vs. this one) and
//! fail on a throughput regression.
//!
//! Both documents are flattened to `path → number` leaves
//! (`runs[1].kops_per_model_sec`, `ops.hits`, …) and every path present
//! in both is compared. A leaf is a **throughput** metric — where lower
//! is a regression — when its terminal key contains `kops` or ends in
//! `_per_sec`; such a leaf dropping more than [`TOLERANCE_PCT`] percent
//! fails the diff. Everything else (latencies, op counts, configs) is
//! reported for context but never gates: model-time latency percentiles
//! legitimately wobble with thread scheduling (see the
//! `store_throughput` bench docs), and op-total equality is already
//! CI-gated byte-for-byte elsewhere.

use crate::json::{self, Value};

/// Allowed throughput drop, percent. One part in ten is far outside
/// the wobble the multi-threaded runs show (placement order shifts
/// wear-dependent write costs by a few percent at most).
pub const TOLERANCE_PCT: f64 = 10.0;

/// One compared numeric leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened JSON path (`runs[0].kops_per_model_sec`).
    pub path: String,
    /// Value in the old document.
    pub old: f64,
    /// Value in the new document.
    pub new: f64,
    /// True when this leaf gates (throughput-named, lower is worse).
    pub gated: bool,
    /// True when this leaf regressed beyond tolerance.
    pub regressed: bool,
}

/// Outcome of one document comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Every numeric leaf present in both documents, in path order.
    pub metrics: Vec<MetricDelta>,
    /// Paths present in exactly one document (shape drift — reported,
    /// not fatal, so adding a metric never breaks the gate).
    pub unmatched: Vec<String>,
}

impl BenchDiff {
    /// Gated leaves that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.metrics.iter().filter(|m| m.regressed).collect()
    }

    /// Render the comparison as a table plus a verdict line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "metric                                        old          new      delta%\n",
        );
        for m in &self.metrics {
            let delta = if m.old == 0.0 {
                0.0
            } else {
                (m.new - m.old) / m.old * 100.0
            };
            out.push_str(&format!(
                "{:<42} {:>12.3} {:>12.3} {:>+10.2}{}\n",
                m.path,
                m.old,
                m.new,
                delta,
                if m.regressed {
                    "  REGRESSION"
                } else if m.gated {
                    "  (gated)"
                } else {
                    ""
                }
            ));
        }
        for p in &self.unmatched {
            out.push_str(&format!("{p:<42}  (only in one document)\n"));
        }
        let bad = self.regressions();
        if bad.is_empty() {
            out.push_str(&format!(
                "bench-diff: OK — no gated metric dropped more than {TOLERANCE_PCT}%\n"
            ));
        } else {
            out.push_str(&format!(
                "bench-diff: FAIL — {} gated metric(s) regressed more than {TOLERANCE_PCT}%\n",
                bad.len()
            ));
        }
        out
    }
}

/// True when `path`'s terminal key names a throughput metric.
fn is_throughput(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.contains("kops") || leaf.ends_with("_per_sec")
}

/// Flatten every numeric leaf of `v` into `out` as `(path, value)`.
fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Obj(m) => {
            for (k, child) in m {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {
            if let Some(n) = v.as_f64() {
                out.push((prefix.to_string(), n));
            }
        }
    }
}

/// Compare two bench documents. Parse failures are errors; shape
/// differences are not (they land in `unmatched`).
pub fn diff_docs(old_doc: &str, new_doc: &str) -> Result<BenchDiff, String> {
    let old = json::parse(old_doc).map_err(|e| format!("old document: {e}"))?;
    let new = json::parse(new_doc).map_err(|e| format!("new document: {e}"))?;
    let mut old_leaves = Vec::new();
    let mut new_leaves = Vec::new();
    flatten("", &old, &mut old_leaves);
    flatten("", &new, &mut new_leaves);
    let new_map: std::collections::BTreeMap<&str, f64> =
        new_leaves.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let old_paths: std::collections::BTreeSet<&str> =
        old_leaves.iter().map(|(p, _)| p.as_str()).collect();
    let mut metrics = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for (path, old_val) in &old_leaves {
        match new_map.get(path.as_str()) {
            Some(&new_val) => {
                let gated = is_throughput(path);
                let regressed = gated && new_val < old_val * (1.0 - TOLERANCE_PCT / 100.0);
                metrics.push(MetricDelta {
                    path: path.clone(),
                    old: *old_val,
                    new: new_val,
                    gated,
                    regressed,
                });
            }
            None => unmatched.push(path.clone()),
        }
    }
    for (path, _) in &new_leaves {
        if !old_paths.contains(path.as_str()) {
            unmatched.push(path.clone());
        }
    }
    Ok(BenchDiff { metrics, unmatched })
}

/// File-reading front end for `main`.
pub fn diff_files(old_path: &str, new_path: &str) -> Result<BenchDiff, String> {
    let old =
        std::fs::read_to_string(old_path).map_err(|e| format!("cannot read {old_path}: {e}"))?;
    let new =
        std::fs::read_to_string(new_path).map_err(|e| format!("cannot read {new_path}: {e}"))?;
    diff_docs(&old, &new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(kops: &str, p99: u64) -> String {
        format!(
            "{{\"bench\":\"store_throughput\",\"ops\":{{\"hits\":100}},\
             \"runs\":[{{\"threads\":1,\"p99_ns\":{p99},\"kops_per_model_sec\":{kops}}}]}}"
        )
    }

    #[test]
    fn within_tolerance_passes() {
        let d = diff_docs(&doc("100.0", 1200), &doc("95.0", 2000)).unwrap();
        assert!(d.regressions().is_empty(), "{d:?}");
        // Latency doubled but p99 is not a gated metric.
        let p99 = d
            .metrics
            .iter()
            .find(|m| m.path.ends_with("p99_ns"))
            .unwrap();
        assert!(!p99.gated);
        assert!(d.render_text().contains("bench-diff: OK"));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let d = diff_docs(&doc("100.0", 1200), &doc("89.9", 1200)).unwrap();
        let bad = d.regressions();
        assert_eq!(bad.len(), 1, "{d:?}");
        assert!(bad[0].path.ends_with("kops_per_model_sec"));
        assert!(d.render_text().contains("bench-diff: FAIL"));
        // Improvements never gate.
        let up = diff_docs(&doc("100.0", 1200), &doc("250.0", 1200)).unwrap();
        assert!(up.regressions().is_empty());
    }

    #[test]
    fn shape_drift_is_reported_not_fatal() {
        let old = "{\"runs\":[{\"kops_per_model_sec\":10.0}]}";
        let new =
            "{\"runs\":[{\"kops_per_model_sec\":10.0,\"extra\":1}],\"telemetry\":{\"banks\":8}}";
        let d = diff_docs(old, new).unwrap();
        assert!(d.regressions().is_empty());
        assert_eq!(d.unmatched.len(), 2, "{:?}", d.unmatched);
    }

    #[test]
    fn parse_failures_are_errors() {
        assert!(diff_docs("not json", "{}").is_err());
        assert!(diff_files("/nonexistent/a.json", "/nonexistent/b.json").is_err());
    }
}
