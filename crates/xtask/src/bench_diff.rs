//! The `bench-diff` subcommand: compare two bench JSON documents
//! (e.g. `BENCH_store.json` from the base branch vs. this one) and
//! fail on a throughput regression.
//!
//! Both documents are flattened to `path → number` leaves
//! (`runs[1].kops_per_model_sec`, `ops.hits`, …) and every path present
//! in both is compared. A leaf is a **throughput** metric — where lower
//! is a regression — when its terminal key contains `kops` or ends in
//! `_per_sec`; such a leaf dropping more than [`TOLERANCE_PCT`] percent
//! fails the diff. Everything else (latencies, op counts, configs) is
//! reported for context but never gates: model-time latency percentiles
//! legitimately wobble with thread scheduling (see the
//! `store_throughput` bench docs), and op-total equality is already
//! CI-gated byte-for-byte elsewhere.

use crate::json::{self, Value};
use std::fmt;

/// Default allowed throughput drop, percent. One part in ten is far
/// outside the wobble the multi-threaded runs show (placement order
/// shifts wear-dependent write costs by a few percent at most).
/// Override per-invocation with `--max-drop-pct`.
pub const TOLERANCE_PCT: f64 = 10.0;

/// A rejected `--max-drop-pct` value.
#[derive(Debug, Clone, PartialEq)]
pub enum ToleranceError {
    /// The flag value did not parse as a number.
    NotANumber(String),
    /// The flag value parsed but is not a usable percentage
    /// (negative, NaN, infinite, or ≥ 100).
    OutOfRange(f64),
}

impl fmt::Display for ToleranceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToleranceError::NotANumber(raw) => {
                write!(f, "--max-drop-pct: `{raw}` is not a number")
            }
            ToleranceError::OutOfRange(v) => write!(
                f,
                "--max-drop-pct: {v} is out of range (want 0 <= pct < 100)"
            ),
        }
    }
}

/// Validate a `--max-drop-pct` flag value: a finite percentage in
/// `[0, 100)`. 0 means "any drop fails"; 100 would gate nothing.
pub fn parse_tolerance(raw: &str) -> Result<f64, ToleranceError> {
    let v: f64 = raw
        .parse()
        .map_err(|_| ToleranceError::NotANumber(raw.to_string()))?;
    if !v.is_finite() || !(0.0..100.0).contains(&v) {
        return Err(ToleranceError::OutOfRange(v));
    }
    Ok(v)
}

/// One compared numeric leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Flattened JSON path (`runs[0].kops_per_model_sec`).
    pub path: String,
    /// Value in the old document.
    pub old: f64,
    /// Value in the new document.
    pub new: f64,
    /// True when this leaf gates (throughput-named, lower is worse).
    pub gated: bool,
    /// True when this leaf regressed beyond tolerance.
    pub regressed: bool,
}

/// Outcome of one document comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Every numeric leaf present in both documents, in path order.
    pub metrics: Vec<MetricDelta>,
    /// Paths present in exactly one document (shape drift — reported,
    /// not fatal, so adding a metric never breaks the gate).
    pub unmatched: Vec<String>,
    /// The tolerance this diff was gated at, percent.
    pub tolerance_pct: f64,
}

impl BenchDiff {
    /// Gated leaves that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.metrics.iter().filter(|m| m.regressed).collect()
    }

    /// Render the comparison as a table plus a verdict line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "metric                                        old          new      delta%\n",
        );
        for m in &self.metrics {
            let delta = if m.old == 0.0 {
                0.0
            } else {
                (m.new - m.old) / m.old * 100.0
            };
            out.push_str(&format!(
                "{:<42} {:>12.3} {:>12.3} {:>+10.2}{}\n",
                m.path,
                m.old,
                m.new,
                delta,
                if m.regressed {
                    "  REGRESSION"
                } else if m.gated {
                    "  (gated)"
                } else {
                    ""
                }
            ));
        }
        for p in &self.unmatched {
            out.push_str(&format!("{p:<42}  (only in one document)\n"));
        }
        let bad = self.regressions();
        if bad.is_empty() {
            out.push_str(&format!(
                "bench-diff: OK — no gated metric dropped more than {}%\n",
                self.tolerance_pct
            ));
        } else {
            out.push_str(&format!(
                "bench-diff: FAIL — {} gated metric(s) regressed more than {}%\n",
                bad.len(),
                self.tolerance_pct
            ));
        }
        out
    }
}

/// True when `path`'s terminal key names a throughput metric.
fn is_throughput(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.contains("kops") || leaf.ends_with("_per_sec")
}

/// Flatten every numeric leaf of `v` into `out` as `(path, value)`.
fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Obj(m) => {
            for (k, child) in m {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {
            if let Some(n) = v.as_f64() {
                out.push((prefix.to_string(), n));
            }
        }
    }
}

/// Compare two bench documents at the default [`TOLERANCE_PCT`].
/// Parse failures are errors; shape differences are not (they land in
/// `unmatched`).
pub fn diff_docs(old_doc: &str, new_doc: &str) -> Result<BenchDiff, String> {
    diff_docs_with(old_doc, new_doc, TOLERANCE_PCT)
}

/// [`diff_docs`] at an explicit tolerance (the `--max-drop-pct` path).
pub fn diff_docs_with(
    old_doc: &str,
    new_doc: &str,
    tolerance_pct: f64,
) -> Result<BenchDiff, String> {
    let old = json::parse(old_doc).map_err(|e| format!("old document: {e}"))?;
    let new = json::parse(new_doc).map_err(|e| format!("new document: {e}"))?;
    let mut old_leaves = Vec::new();
    let mut new_leaves = Vec::new();
    flatten("", &old, &mut old_leaves);
    flatten("", &new, &mut new_leaves);
    let new_map: std::collections::BTreeMap<&str, f64> =
        new_leaves.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let old_paths: std::collections::BTreeSet<&str> =
        old_leaves.iter().map(|(p, _)| p.as_str()).collect();
    let mut metrics = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for (path, old_val) in &old_leaves {
        match new_map.get(path.as_str()) {
            Some(&new_val) => {
                let gated = is_throughput(path);
                let regressed = gated && new_val < old_val * (1.0 - tolerance_pct / 100.0);
                metrics.push(MetricDelta {
                    path: path.clone(),
                    old: *old_val,
                    new: new_val,
                    gated,
                    regressed,
                });
            }
            None => unmatched.push(path.clone()),
        }
    }
    for (path, _) in &new_leaves {
        if !old_paths.contains(path.as_str()) {
            unmatched.push(path.clone());
        }
    }
    Ok(BenchDiff {
        metrics,
        unmatched,
        tolerance_pct,
    })
}

/// File-reading front end for `main`, at the default tolerance.
pub fn diff_files(old_path: &str, new_path: &str) -> Result<BenchDiff, String> {
    diff_files_with(old_path, new_path, TOLERANCE_PCT)
}

/// [`diff_files`] at an explicit tolerance (the `--max-drop-pct` path).
pub fn diff_files_with(
    old_path: &str,
    new_path: &str,
    tolerance_pct: f64,
) -> Result<BenchDiff, String> {
    let old =
        std::fs::read_to_string(old_path).map_err(|e| format!("cannot read {old_path}: {e}"))?;
    let new =
        std::fs::read_to_string(new_path).map_err(|e| format!("cannot read {new_path}: {e}"))?;
    diff_docs_with(&old, &new, tolerance_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(kops: &str, p99: u64) -> String {
        format!(
            "{{\"bench\":\"store_throughput\",\"ops\":{{\"hits\":100}},\
             \"runs\":[{{\"threads\":1,\"p99_ns\":{p99},\"kops_per_model_sec\":{kops}}}]}}"
        )
    }

    #[test]
    fn within_tolerance_passes() {
        let d = diff_docs(&doc("100.0", 1200), &doc("95.0", 2000)).unwrap();
        assert!(d.regressions().is_empty(), "{d:?}");
        // Latency doubled but p99 is not a gated metric.
        let p99 = d
            .metrics
            .iter()
            .find(|m| m.path.ends_with("p99_ns"))
            .unwrap();
        assert!(!p99.gated);
        assert!(d.render_text().contains("bench-diff: OK"));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let d = diff_docs(&doc("100.0", 1200), &doc("89.9", 1200)).unwrap();
        let bad = d.regressions();
        assert_eq!(bad.len(), 1, "{d:?}");
        assert!(bad[0].path.ends_with("kops_per_model_sec"));
        assert!(d.render_text().contains("bench-diff: FAIL"));
        // Improvements never gate.
        let up = diff_docs(&doc("100.0", 1200), &doc("250.0", 1200)).unwrap();
        assert!(up.regressions().is_empty());
    }

    #[test]
    fn shape_drift_is_reported_not_fatal() {
        let old = "{\"runs\":[{\"kops_per_model_sec\":10.0}]}";
        let new =
            "{\"runs\":[{\"kops_per_model_sec\":10.0,\"extra\":1}],\"telemetry\":{\"banks\":8}}";
        let d = diff_docs(old, new).unwrap();
        assert!(d.regressions().is_empty());
        assert_eq!(d.unmatched.len(), 2, "{:?}", d.unmatched);
    }

    #[test]
    fn parse_failures_are_errors() {
        assert!(diff_docs("not json", "{}").is_err());
        assert!(diff_files("/nonexistent/a.json", "/nonexistent/b.json").is_err());
    }

    #[test]
    fn explicit_tolerance_moves_the_gate() {
        // A 5% drop passes at the default 10% but fails at 2%.
        let old = doc("100.0", 1200);
        let new = doc("95.0", 1200);
        assert!(diff_docs(&old, &new).unwrap().regressions().is_empty());
        let tight = diff_docs_with(&old, &new, 2.0).unwrap();
        assert_eq!(tight.regressions().len(), 1, "{tight:?}");
        assert!(tight.render_text().contains("more than 2%"), "verdict line");
        // Zero tolerance gates any drop at all.
        let zero = diff_docs_with(&old, &new, 0.0).unwrap();
        assert_eq!(zero.regressions().len(), 1);
    }

    #[test]
    fn tolerance_parsing_is_validated() {
        assert_eq!(parse_tolerance("10"), Ok(10.0));
        assert_eq!(parse_tolerance("2.5"), Ok(2.5));
        assert_eq!(parse_tolerance("0"), Ok(0.0));
        assert_eq!(
            parse_tolerance("fast"),
            Err(ToleranceError::NotANumber("fast".into()))
        );
        assert_eq!(parse_tolerance("-3"), Err(ToleranceError::OutOfRange(-3.0)));
        assert_eq!(
            parse_tolerance("100"),
            Err(ToleranceError::OutOfRange(100.0))
        );
        assert!(matches!(
            parse_tolerance("NaN"),
            Err(ToleranceError::OutOfRange(_))
        ));
        assert!(matches!(
            parse_tolerance("inf"),
            Err(ToleranceError::OutOfRange(_))
        ));
        let msg = parse_tolerance("fast").unwrap_err().to_string();
        assert!(msg.contains("not a number"), "{msg}");
    }
}
