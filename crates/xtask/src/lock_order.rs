//! `lock-order`: the workspace's inter-procedural lock-acquisition
//! contract.
//!
//! Replaces the token-local `lock-discipline` heuristic of PR 3. That
//! rule could only count `.lock(` calls inside one function; it could
//! not see that `PcmStore::put` holds a directory stripe while
//! `Allocator::allocate` — two calls away — takes the allocator lock
//! and then a bank lock. This analysis can, and checks the whole
//! workspace against one declared order:
//!
//! ```text
//! stripe  →  allocator  →  bank  →  bch-registry  →  gf-registry  →  telemetry
//! ```
//!
//! (`pcm-store` directory stripes outermost, then the free-list
//! allocator, then the per-bank device locks; the ECC table
//! registries are inner leaves — `Bch::new` builds tables while
//! holding the BCH registry, which may populate the GF registry.
//! The telemetry series mutex is innermost: `advance_time` takes it
//! with nothing else held, and while held it only pushes into the
//! lock-free trace ring.)
//!
//! ## The contract
//!
//! 1. **Every raw `.lock(` site lives inside a declared wrapper fn**
//!    ([`WRAPPERS`]). Locking through one named site per layer is what
//!    makes the graph analyzable — and greppable for humans.
//! 2. **No path acquires against the declared order.** For every
//!    function, every lock class reachable *while another is held*
//!    (directly, or transitively through calls) must rank strictly
//!    higher than the held class. Witness chains are reported at the
//!    offending call/acquisition token, so diagnostics stay
//!    span-accurate.
//! 3. **Two same-class guards only via `lock_pair_ordered`** — the
//!    sorted two-bank helper from PR 3. This is the migrated
//!    `lock-discipline` check, now class-aware: a stripe guard next to
//!    a bank guard is fine (that's the declared order working), two ad
//!    hoc bank guards are not.
//!
//! The analysis over-approximates "held" as *from acquisition to end
//! of function* and resolves unqualified method calls to every visible
//! same-named function; both err toward spurious edges, never missed
//! ones. Same-class nesting through calls is deliberately **not**
//! flagged (an `expr.stats()` on a locked guard would resolve to the
//! engine's own `stats` and drown the signal); the pair rule covers
//! the case that matters.

use crate::model::{CallEvent, CallKind, FnInfo, Workspace};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// The rule id (also the allow-comment key).
pub const RULE: &str = "lock-order";

/// Lock classes in their declared acquisition order, outermost first.
/// Rank = index; every edge in the observed lock graph must strictly
/// increase rank.
pub const DECLARED_ORDER: &[&str] = &[
    "stripe",
    "allocator",
    "bank",
    "bch-registry",
    "gf-registry",
    "telemetry",
];

/// A declared lock-acquisition wrapper function.
pub struct Wrapper {
    /// The wrapper's (workspace-unique) function name.
    pub fn_name: &'static str,
    /// The lock class it acquires.
    pub class: &'static str,
    /// True when the wrapper *returns* its guard (the caller holds the
    /// lock after the call); false for self-contained wrappers that
    /// release internally (the table registries).
    pub returns_guard: bool,
    /// True for the sanctioned sorted two-bank helper.
    pub sanctioned_pair: bool,
}

/// Every declared wrapper. Raw `.lock(` is legal only inside these.
pub const WRAPPERS: &[Wrapper] = &[
    Wrapper {
        fn_name: "lock_stripe",
        class: "stripe",
        returns_guard: true,
        sanctioned_pair: false,
    },
    Wrapper {
        fn_name: "lock_state",
        class: "allocator",
        returns_guard: true,
        sanctioned_pair: false,
    },
    Wrapper {
        fn_name: "lock_bank",
        class: "bank",
        returns_guard: true,
        sanctioned_pair: false,
    },
    Wrapper {
        fn_name: "lock_pair_ordered",
        class: "bank",
        returns_guard: true,
        sanctioned_pair: true,
    },
    Wrapper {
        fn_name: "bch_registry",
        class: "bch-registry",
        returns_guard: false,
        sanctioned_pair: false,
    },
    Wrapper {
        fn_name: "gf_registry",
        class: "gf-registry",
        returns_guard: false,
        sanctioned_pair: false,
    },
    Wrapper {
        fn_name: "lock_series",
        class: "telemetry",
        returns_guard: true,
        sanctioned_pair: false,
    },
];

fn wrapper(name: &str) -> Option<&'static Wrapper> {
    WRAPPERS.iter().find(|w| w.fn_name == name)
}

/// Rank of a class in the declared order.
pub fn rank(class: &str) -> Option<usize> {
    DECLARED_ORDER.iter().position(|c| *c == class)
}

/// The observed workspace lock graph: directed class-to-class edges,
/// each with one witness site. Kept as its own type so tests can
/// inject edges (e.g. a cycle) without a source tree.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// (held, acquired) → first witness `(file, line, description)`.
    edges: BTreeMap<(String, String), (String, u32, String)>,
}

impl LockGraph {
    /// Record an observed edge (first witness wins).
    pub fn add_edge(&mut self, held: &str, acquired: &str, file: &str, line: u32, via: &str) {
        self.edges
            .entry((held.to_string(), acquired.to_string()))
            .or_insert_with(|| (file.to_string(), line, via.to_string()));
    }

    /// Edges violating the declared order (rank must strictly
    /// increase; unknown classes always violate).
    pub fn out_of_order(&self) -> Vec<(&str, &str, &(String, u32, String))> {
        self.edges
            .iter()
            .filter(|((held, acq), _)| match (rank(held), rank(acq)) {
                (Some(h), Some(a)) => a <= h,
                _ => true,
            })
            .map(|((held, acq), w)| (held.as_str(), acq.as_str(), w))
            .collect()
    }

    /// One cycle through the edge set, if any, as the class sequence
    /// `[a, b, …, a]`. A cyclic lock graph means two paths can block
    /// on each other no matter what total order is declared.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (held, acq) in self.edges.keys() {
            adj.entry(held).or_default().push(acq);
        }
        // Iterative DFS with an explicit color map.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let nodes: BTreeSet<&str> = self
            .edges
            .keys()
            .flat_map(|(a, b)| [a.as_str(), b.as_str()])
            .collect();
        let mut color: BTreeMap<&str, Color> = nodes.iter().map(|n| (*n, Color::White)).collect();
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        for &start in &nodes {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            color.insert(start, Color::Grey);
            while let Some(&(node, next)) = stack.last() {
                let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if next < succs.len() {
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    let s = succs[next];
                    match color[s] {
                        Color::White => {
                            parent.insert(s, node);
                            color.insert(s, Color::Grey);
                            stack.push((s, 0));
                        }
                        Color::Grey => {
                            // Found a back edge node → s: walk parents.
                            let mut path = vec![s.to_string(), node.to_string()];
                            let mut cur = node;
                            while cur != s {
                                let p = parent[&cur];
                                path.push(p.to_string());
                                cur = p;
                            }
                            path.reverse();
                            return Some(path);
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Index of every non-test function, for call resolution.
struct FnTable {
    /// name → fn indices (methods and free fns).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (impl type, name) → fn indices.
    by_impl: BTreeMap<(String, String), Vec<usize>>,
    /// name → free-fn indices.
    free: BTreeMap<String, Vec<usize>>,
}

impl FnTable {
    fn build(ws: &Workspace) -> FnTable {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            by_name.entry(f.name.clone()).or_default().push(i);
            match &f.impl_type {
                Some(t) => by_impl
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(i),
                None => free.entry(f.name.clone()).or_default().push(i),
            }
        }
        FnTable {
            by_name,
            by_impl,
            free,
        }
    }
}

/// Resolve a call to candidate workspace functions, filtered to crates
/// visible from the caller.
fn resolve(ws: &Workspace, table: &FnTable, caller: &FnInfo, ev: &CallEvent) -> Vec<usize> {
    let caller_crate = ws.crate_of(caller);
    let vis = |idx: &usize| ws.crate_visible(caller_crate, ws.crate_of(&ws.fns[*idx]));
    let from = |m: Option<&Vec<usize>>| -> Vec<usize> {
        m.map(|v| v.iter().filter(|i| vis(i)).copied().collect())
            .unwrap_or_default()
    };
    match &ev.kind {
        CallKind::Qualified(q) if q.is_empty() => Vec::new(),
        CallKind::Qualified(q) => {
            let exact = from(table.by_impl.get(&(q.clone(), ev.name.clone())));
            if !exact.is_empty() {
                exact
            } else {
                from(table.free.get(&ev.name))
            }
        }
        CallKind::SelfMethod => {
            if let Some(t) = &caller.impl_type {
                let exact = from(table.by_impl.get(&(t.clone(), ev.name.clone())));
                if !exact.is_empty() {
                    return exact;
                }
            }
            from(table.by_name.get(&ev.name))
        }
        CallKind::Method => from(table.by_name.get(&ev.name)),
        CallKind::Free => from(table.free.get(&ev.name)),
    }
}

/// Transitive lock classes each function may acquire. Fixpoint over
/// the resolved call graph; wrapper calls seed the sets.
fn acquire_sets(ws: &Workspace, resolved: &[Vec<Vec<usize>>]) -> Vec<BTreeSet<&'static str>> {
    let mut acq: Vec<BTreeSet<&'static str>> = vec![BTreeSet::new(); ws.fns.len()];
    for (i, f) in ws.fns.iter().enumerate() {
        for ev in &f.events {
            if let Some(w) = wrapper(&ev.name) {
                acq[i].insert(w.class);
            }
        }
        // A wrapper's own raw lock is its class.
        if let Some(w) = wrapper(&f.name) {
            if f.events.iter().any(|e| e.raw_lock) {
                acq[i].insert(w.class);
            }
        }
    }
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            for (ei, _ev) in ws.fns[i].events.iter().enumerate() {
                for &t in &resolved[i][ei] {
                    if t == i {
                        continue;
                    }
                    let add: Vec<&'static str> = acq[t].difference(&acq[i]).copied().collect();
                    if !add.is_empty() {
                        changed = true;
                        acq[i].extend(add);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    acq
}

/// Run the whole analysis, pushing diagnostics.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let table = FnTable::build(ws);

    // Wrapper names must be unique: the analysis keys on them.
    for w in WRAPPERS {
        if let Some(defs) = table.by_name.get(w.fn_name) {
            for &dup in defs.iter().skip(1) {
                let f = &ws.fns[dup];
                let file = &ws.files[f.file];
                let t = &file.code[f.decl_tok];
                out.push(diag(
                    file,
                    t.line,
                    t.col,
                    format!(
                        "duplicate definition of lock wrapper `{}` — wrapper names must be \
                         workspace-unique for the lock graph to resolve",
                        w.fn_name
                    ),
                    "rename this function; the declared wrappers are the analysis's anchor points"
                        .to_string(),
                ));
            }
        }
    }

    // Resolve every call once.
    let resolved: Vec<Vec<Vec<usize>>> = ws
        .fns
        .iter()
        .map(|f| {
            f.events
                .iter()
                .map(|ev| {
                    if wrapper(&ev.name).is_some() || ev.raw_lock {
                        Vec::new() // wrappers are handled by name, raw locks by site
                    } else {
                        resolve(ws, &table, f, ev)
                    }
                })
                .collect()
        })
        .collect();
    let acq = acquire_sets(ws, &resolved);

    let mut graph = LockGraph::default();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let file = &ws.files[f.file];
        let fn_is_wrapper = wrapper(&f.name).is_some();
        let pair_called = f
            .events
            .iter()
            .any(|e| wrapper(&e.name).is_some_and(|w| w.sanctioned_pair));
        let mut held: Vec<(&'static str, usize)> = Vec::new();
        let mut guard_sites: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
        for (ei, ev) in f.events.iter().enumerate() {
            let t = &file.code[ev.tok];
            if ev.raw_lock {
                match wrapper(&f.name) {
                    Some(w) => held.push((w.class, ev.tok)),
                    None => out.push(diag(
                        file,
                        t.line,
                        t.col,
                        format!(
                            "raw `.lock(` call in `{}` outside any declared wrapper",
                            f.name
                        ),
                        format!(
                            "route the acquisition through its layer's wrapper ({}) so the \
                             lock-order analysis can classify it",
                            WRAPPERS
                                .iter()
                                .map(|w| w.fn_name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )),
                }
                continue;
            }
            if let Some(w) = wrapper(&ev.name) {
                for &(h, _) in &held {
                    if h != w.class {
                        graph.add_edge(h, w.class, &file.rel, t.line, &ev.name);
                        order_check(file, t.line, t.col, h, w.class, &ev.name, out);
                    }
                }
                if w.returns_guard {
                    held.push((w.class, ev.tok));
                    guard_sites.entry(w.class).or_default().push(ev.tok);
                }
                continue;
            }
            // Ordinary call: edges from every held class to every class
            // the callee may transitively acquire.
            let mut classes: BTreeSet<&'static str> = BTreeSet::new();
            for &tgt in &resolved[i][ei] {
                classes.extend(acq[tgt].iter().copied());
            }
            for &(h, _) in &held {
                for &c in &classes {
                    if c != h {
                        graph.add_edge(h, c, &file.rel, t.line, &ev.name);
                        order_check(file, t.line, t.col, h, c, &ev.name, out);
                    }
                }
            }
        }
        // Migrated lock-discipline check, class-aware: two same-class
        // guards in one function only via the sanctioned pair helper.
        if !fn_is_wrapper && !pair_called {
            for (class, sites) in &guard_sites {
                if sites.len() >= 2 {
                    let t = &file.code[sites[1]];
                    out.push(diag(
                        file,
                        t.line,
                        t.col,
                        format!("fn `{}` acquires two `{}` guards ad hoc", f.name, class),
                        "route the pair through ShardedPcmDevice::lock_pair_ordered (guards \
                         ascend by bank id), restructure to one acquisition, or add \
                         `// pcm-lint: allow(lock-order)` proving the order cannot invert"
                            .to_string(),
                    ));
                }
            }
        }
    }

    // Defense in depth: a cyclic observed graph deadlocks under *any*
    // declared order. With a total order every cycle also contains an
    // out-of-order edge, so this usually adds context, not new sites.
    if let Some(cycle) = graph.find_cycle() {
        if let Some((_, _, (file, line, via))) = graph.out_of_order().first() {
            out.push(Diagnostic {
                rule: RULE,
                file: file.clone(),
                line: *line,
                col: 1,
                message: format!("lock graph contains a cycle: {}", cycle.join(" → ")),
                suggestion: format!(
                    "break the cycle (witness edge via `{via}`); the declared order is {}",
                    DECLARED_ORDER.join(" → ")
                ),
            });
        }
    }
}

fn order_check(
    file: &crate::source::SourceFile,
    line: u32,
    col: u32,
    held: &str,
    acquired: &str,
    via: &str,
    out: &mut Vec<Diagnostic>,
) {
    let ok = matches!((rank(held), rank(acquired)), (Some(h), Some(a)) if a > h);
    if ok {
        return;
    }
    out.push(diag(
        file,
        line,
        col,
        format!(
            "acquires `{acquired}` (via `{via}`) while holding `{held}` — against the declared \
             order {}",
            DECLARED_ORDER.join(" → ")
        ),
        "acquire locks in declared order only: restructure so the outer lock is taken first, \
         or release the held guard before this call"
            .to_string(),
    ));
}

fn diag(
    file: &crate::source::SourceFile,
    line: u32,
    col: u32,
    message: String,
    suggestion: String,
) -> Diagnostic {
    Diagnostic {
        rule: RULE,
        file: file.rel.clone(),
        line,
        col,
        message,
        suggestion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::single(SourceFile::parse("t.rs", "pcm-device", src));
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    const WRAPPER_DEFS: &str = "\
        fn lock_stripe(m: &Mutex<()>) -> MutexGuard<'_, ()> {\n\
            m.lock().unwrap_or_else(PoisonError::into_inner)\n\
        }\n\
        fn lock_state(m: &Mutex<u32>) -> MutexGuard<'_, u32> {\n\
            m.lock().unwrap_or_else(PoisonError::into_inner)\n\
        }\n\
        fn lock_bank(m: &Mutex<u64>) -> MutexGuard<'_, u64> {\n\
            m.lock().unwrap_or_else(PoisonError::into_inner)\n\
        }\n";

    #[test]
    fn in_order_acquisition_is_clean() {
        let src = format!(
            "{WRAPPER_DEFS}\n\
             fn op(s: &Mutex<()>, a: &Mutex<u32>, b: &Mutex<u64>) {{\n\
                 let _s = lock_stripe(s);\n\
                 let _a = lock_state(a);\n\
                 let _b = lock_bank(b);\n\
             }}\n"
        );
        assert_eq!(run(&src), vec![]);
    }

    #[test]
    fn out_of_order_direct_acquisition_is_flagged_at_the_call_site() {
        let src = format!(
            "{WRAPPER_DEFS}\n\
             fn op(s: &Mutex<()>, b: &Mutex<u64>) {{\n\
                 let _b = lock_bank(b);\n\
                 let _s = lock_stripe(s);\n\
             }}\n"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`stripe`"));
        assert!(diags[0].message.contains("holding `bank`"));
    }

    #[test]
    fn out_of_order_through_a_call_is_flagged() {
        let src = format!(
            "{WRAPPER_DEFS}\n\
             fn helper(s: &Mutex<()>) {{\n\
                 let _s = lock_stripe(s);\n\
             }}\n\
             fn op(s: &Mutex<()>, b: &Mutex<u64>) {{\n\
                 let _b = lock_bank(b);\n\
                 helper(s);\n\
             }}\n"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("via `helper`"));
    }

    #[test]
    fn forward_order_through_a_call_is_clean() {
        let src = format!(
            "{WRAPPER_DEFS}\n\
             fn to_bank(b: &Mutex<u64>) -> u64 {{\n\
                 *lock_bank(b)\n\
             }}\n\
             fn op(s: &Mutex<()>, b: &Mutex<u64>) -> u64 {{\n\
                 let _s = lock_stripe(s);\n\
                 to_bank(b)\n\
             }}\n"
        );
        assert_eq!(run(&src), vec![]);
    }

    #[test]
    fn ad_hoc_same_class_pair_is_flagged_but_helper_is_sanctioned() {
        let bad = format!(
            "{WRAPPER_DEFS}\n\
             fn op(a: &Mutex<u64>, b: &Mutex<u64>) {{\n\
                 let _a = lock_bank(a);\n\
                 let _b = lock_bank(b);\n\
             }}\n"
        );
        let diags = run(&bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("two `bank` guards"));

        let good = format!(
            "{WRAPPER_DEFS}\n\
             fn lock_pair_ordered(a: &Mutex<u64>, b: &Mutex<u64>) -> (MutexGuard<'_, u64>, MutexGuard<'_, u64>) {{\n\
                 (lock_bank(a), lock_bank(b))\n\
             }}\n\
             fn op(a: &Mutex<u64>, b: &Mutex<u64>) {{\n\
                 let (_a, _b) = lock_pair_ordered(a, b);\n\
             }}\n"
        );
        assert_eq!(run(&good), vec![]);
    }

    #[test]
    fn raw_lock_outside_wrapper_is_flagged() {
        let diags = run("fn sneaky(m: &Mutex<u64>) -> u64 {\n    *m.lock().unwrap_or_else(PoisonError::into_inner)\n}\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("raw `.lock(`"));
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn injected_cycle_is_detected() {
        // The cycle-injection negative test the lock graph must catch:
        // stripe → bank (legal) plus bank → stripe (illegal) is a cycle
        // no matter which of the two the declared order blesses.
        let mut g = LockGraph::default();
        g.add_edge("stripe", "bank", "a.rs", 1, "x");
        g.add_edge("bank", "stripe", "b.rs", 9, "y");
        let cycle = g.find_cycle().expect("cycle found");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        assert!(!g.out_of_order().is_empty());
    }

    #[test]
    fn acyclic_in_order_graph_is_clean() {
        let mut g = LockGraph::default();
        g.add_edge("stripe", "allocator", "a.rs", 1, "x");
        g.add_edge("allocator", "bank", "a.rs", 2, "y");
        g.add_edge("stripe", "bank", "a.rs", 3, "z");
        assert!(g.find_cycle().is_none());
        assert!(g.out_of_order().is_empty());
    }

    #[test]
    fn duplicate_wrapper_definition_is_flagged() {
        let src = "\
            fn lock_bank(m: &Mutex<u64>) -> MutexGuard<'_, u64> {\n\
                m.lock().unwrap_or_else(PoisonError::into_inner)\n\
            }\n\
            mod other {\n\
                fn lock_bank(m: &Mutex<u32>) -> MutexGuard<'_, u32> {\n\
                    m.lock().unwrap_or_else(PoisonError::into_inner)\n\
                }\n\
            }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("duplicate definition"));
    }
}
