//! `pcm-lint` — the workspace's in-repo static-analysis pass.
//!
//! The last two PRs made hard correctness promises: bit-identical
//! sharded vs. sequential execution, integer-tick scrub scheduling,
//! per-bank RNG streams, and library paths that return typed errors
//! instead of panicking. Nothing in `rustc`/`clippy` enforces those —
//! they hold only until an edit reintroduces a float tick, an ad-hoc
//! second lock, or an `unwrap()` in a hot path. This crate machine-checks
//! them:
//!
//! * [`rules`] — the invariant catalogue (`no-panic-lib`,
//!   `no-float-tick`, `no-ambient-nondeterminism`, `lock-discipline`,
//!   `no-deprecated-internal`);
//! * [`lexer`] — a hand-rolled, dependency-free Rust lexer (the
//!   hermetic build cannot fetch `syn`);
//! * [`source`] — test-region / fn-span / allow-comment structure.
//!
//! Run it as `cargo lint` (alias for `cargo run -p xtask -- lint`).
//! Suppress a finding with `// pcm-lint: allow(<rule>)` on the same or
//! the preceding line, plus a one-line justification.

pub mod lexer;
pub mod rules;
pub mod source;
pub mod trace_report;

use source::SourceFile;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (also the allow-comment key).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    help: {}",
            self.file, self.line, self.col, self.rule, self.message, self.suggestion
        )
    }
}

impl Diagnostic {
    /// Render as a JSON object (hand-rolled; no serde in the hermetic
    /// build).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":{},"file":{},"line":{},"col":{},"message":{},"suggestion":{}}}"#,
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.suggestion)
        )
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint one source string. `rel` is the path reported in diagnostics;
/// `crate_name` selects which rules apply.
pub fn lint_source(rel: &str, crate_name: &str, src: &str) -> Vec<Diagnostic> {
    let f = SourceFile::parse(rel, crate_name, src);
    let mut out = Vec::new();
    for rule in rules::all() {
        rule.check(&f, &mut out);
    }
    out.retain(|d| !f.is_allowed(d.rule, d.line));
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Expected-diagnostic markers in fixture files: a trailing
/// `//~ <rule-id>` comment asserts one diagnostic of that rule on its
/// line. Returns `(line, rule)` pairs in line order.
pub fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for tok in lexer::lex(src) {
        if tok.kind != lexer::TokKind::LineComment {
            continue;
        }
        if let Some(rest) = tok.text.strip_prefix("//~") {
            out.push((tok.line, rest.trim().to_string()));
        }
    }
    out
}

/// A workspace crate to lint.
#[derive(Debug, Clone)]
pub struct CrateDir {
    /// Package name from its `Cargo.toml`.
    pub name: String,
    /// Path to the crate root (directory containing `Cargo.toml`).
    pub dir: PathBuf,
}

/// Crates the lint never walks: shims mimic external crate APIs, and
/// xtask's own fixture corpus is deliberate violations.
const SKIPPED_MEMBER_PREFIXES: &[&str] = &["crates/shim", "crates/xtask"];

/// Discover the workspace's lintable crates from the root `Cargo.toml`
/// (hand-parsed: the hermetic build has no toml crate). Includes the
/// root `mlc-pcm` package itself.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<CrateDir>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members: Vec<String> = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if line.contains(']') {
                break;
            }
        }
    }
    let mut crates = Vec::new();
    for member in members {
        if SKIPPED_MEMBER_PREFIXES
            .iter()
            .any(|p| member.starts_with(p))
        {
            continue;
        }
        let dir = root.join(&member);
        if let Some(name) = package_name(&dir.join("Cargo.toml"))? {
            crates.push(CrateDir { name, dir });
        }
    }
    // The root package (`mlc-pcm`) has its own src/.
    if let Some(name) = package_name(&root.join("Cargo.toml"))? {
        crates.push(CrateDir {
            name,
            dir: root.to_path_buf(),
        });
    }
    Ok(crates)
}

/// The `name = "…"` of a manifest's `[package]` section, if present.
fn package_name(manifest: &Path) -> io::Result<Option<String>> {
    let text = match fs::read_to_string(manifest) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            if let Some(name) = line.split('"').nth(1) {
                return Ok(Some(name.to_string()));
            }
        }
    }
    Ok(None)
}

/// Lint every `src/**/*.rs` of every workspace crate. Diagnostics come
/// back sorted by file, then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for krate in workspace_crates(root)? {
        let src_dir = krate.dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            out.extend(lint_source(&rel, &krate.name, &src));
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col)));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_suppresses_the_diagnostic() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // pcm-lint: allow(no-panic-lib)\n}\n";
        assert!(lint_source("lib.rs", "pcm-core", src).is_empty());
        let src_no_allow = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_source("lib.rs", "pcm-core", src_no_allow);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-panic-lib");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn rules_scope_by_crate() {
        // unwrap in a non-library crate (bench) is fine.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("lib.rs", "pcm-bench", src).is_empty());
        assert_eq!(lint_source("lib.rs", "pcm-ecc", src).len(), 1);
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic {
            rule: "no-panic-lib",
            file: "a\\b.rs".into(),
            line: 1,
            col: 2,
            message: "say \"hi\"".into(),
            suggestion: "line\nbreak".into(),
        };
        let j = d.to_json();
        assert!(j.contains(r#""file":"a\\b.rs""#));
        assert!(j.contains(r#"say \"hi\""#));
        assert!(j.contains(r#"line\nbreak"#));
    }

    #[test]
    fn expected_markers_parse() {
        let src = "fn f() {\n    x.unwrap(); //~ no-panic-lib\n}\n";
        assert_eq!(expected_markers(src), vec![(2, "no-panic-lib".into())]);
    }
}
