//! `pcm-lint` — the workspace's in-repo static-analysis pass.
//!
//! Earlier PRs made hard correctness promises: bit-identical sharded
//! vs. sequential execution, integer-tick scrub scheduling, per-bank
//! RNG streams, and library paths that return typed errors instead of
//! panicking. Nothing in `rustc`/`clippy` enforces those — they hold
//! only until an edit reintroduces a float tick, an ad-hoc second
//! lock, or an `unwrap()` in a hot path. This crate machine-checks
//! them:
//!
//! * [`rules`] — the per-file invariant catalogue (`no-panic-lib`,
//!   `no-float-tick`, `no-ambient-nondeterminism`, `atomic-ordering`,
//!   `no-deprecated-internal`);
//! * [`lock_order`] — the workspace-level inter-procedural lock-order
//!   analysis (declared order `stripe → allocator → bank →
//!   bch-registry → gf-registry`, cycle detection, sanctioned pair
//!   helper);
//! * [`model`] — the item/call-graph model the inter-procedural pass
//!   runs on;
//! * [`lexer`] — a hand-rolled, dependency-free Rust lexer (the
//!   hermetic build cannot fetch `syn`);
//! * [`source`] — test-region / fn-span / allow-comment structure;
//! * [`json`] — a minimal JSON reader backing the `--json` schema
//!   round-trip test.
//!
//! Run it as `cargo lint` (alias for `cargo run -p xtask -- lint`).
//! Suppress a finding with `// pcm-lint: allow(<rule>)` on the same or
//! the preceding line, plus a one-line justification; `cargo lint
//! --audit-allows` re-checks every suppression and fails on stale
//! ones, so the allow list can only shrink.

pub mod bench_diff;
pub mod json;
pub mod lexer;
pub mod lock_order;
pub mod model;
pub mod obs_report;
pub mod profile_report;
pub mod rules;
pub mod source;
pub mod trace_report;

use model::Workspace;
use source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The `--json` document schema version. Bump on any breaking change
/// to the field set (documented in DESIGN.md §15).
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (also the allow-comment key).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}\n    help: {}",
            self.file, self.line, self.col, self.rule, self.message, self.suggestion
        )
    }
}

impl Diagnostic {
    /// Render as a JSON object (hand-rolled; no serde in the hermetic
    /// build).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":{},"file":{},"line":{},"col":{},"message":{},"suggestion":{}}}"#,
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.suggestion)
        )
    }
}

/// A stale (or malformed) `// pcm-lint: allow(…)` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAllow {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the allow comment.
    pub line: u32,
    /// The rule id the comment names.
    pub rule: String,
    /// Why the suppression is stale.
    pub reason: String,
}

impl fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: stale allow({}) — {}",
            self.file, self.line, self.rule, self.reason
        )
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The stable `--json` lint document (schema in DESIGN.md §15):
/// `{"schema_version", "tool", "mode": "lint", "count", "diagnostics"}`.
pub fn json_document(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!(
        r#"{{"schema_version":{JSON_SCHEMA_VERSION},"tool":"pcm-lint","mode":"lint","count":{},"diagnostics":[{}]}}"#,
        diags.len(),
        items.join(",")
    )
}

/// The stable `--json` audit document:
/// `{"schema_version", "tool", "mode": "audit-allows", "allow_count",
/// "stale_count", "stale"}`.
pub fn audit_json_document(total_allows: usize, stale: &[StaleAllow]) -> String {
    let items: Vec<String> = stale
        .iter()
        .map(|s| {
            format!(
                r#"{{"file":{},"line":{},"rule":{},"reason":{}}}"#,
                json_str(&s.file),
                s.line,
                json_str(&s.rule),
                json_str(&s.reason)
            )
        })
        .collect();
    format!(
        r#"{{"schema_version":{JSON_SCHEMA_VERSION},"tool":"pcm-lint","mode":"audit-allows","allow_count":{total_allows},"stale_count":{},"stale":[{}]}}"#,
        stale.len(),
        items.join(",")
    )
}

/// Run every per-file rule on `f` without allow filtering.
fn raw_file_diagnostics(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules::all() {
        rule.check(f, &mut out);
    }
    out
}

/// Lint one source string: per-file rules plus the lock-order analysis
/// on a single-file workspace. `rel` is the path reported in
/// diagnostics; `crate_name` selects which rules apply.
pub fn lint_source(rel: &str, crate_name: &str, src: &str) -> Vec<Diagnostic> {
    let ws = Workspace::single(SourceFile::parse(rel, crate_name, src));
    let f = &ws.files[0];
    let mut out = raw_file_diagnostics(f);
    lock_order::check(&ws, &mut out);
    out.retain(|d| !f.is_allowed(d.rule, d.line));
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Expected-diagnostic markers in fixture files: a trailing
/// `//~ <rule-id>` comment asserts one diagnostic of that rule on its
/// line. Returns `(line, rule)` pairs in line order.
pub fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for tok in lexer::lex(src) {
        if tok.kind != lexer::TokKind::LineComment {
            continue;
        }
        if let Some(rest) = tok.text.strip_prefix("//~") {
            out.push((tok.line, rest.trim().to_string()));
        }
    }
    out
}

/// A workspace crate to lint.
#[derive(Debug, Clone)]
pub struct CrateDir {
    /// Package name from its `Cargo.toml`.
    pub name: String,
    /// Path to the crate root (directory containing `Cargo.toml`).
    pub dir: PathBuf,
}

/// Crates the lint never walks: shims mimic external crate APIs, and
/// xtask's own fixture corpus is deliberate violations.
const SKIPPED_MEMBER_PREFIXES: &[&str] = &["crates/shim", "crates/xtask"];

/// Discover the workspace's lintable crates from the root `Cargo.toml`
/// (hand-parsed: the hermetic build has no toml crate). Includes the
/// root `mlc-pcm` package itself.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<CrateDir>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members: Vec<String> = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if line.contains(']') {
                break;
            }
        }
    }
    let mut crates = Vec::new();
    for member in members {
        if SKIPPED_MEMBER_PREFIXES
            .iter()
            .any(|p| member.starts_with(p))
        {
            continue;
        }
        let dir = root.join(&member);
        if let Some(name) = package_name(&dir.join("Cargo.toml"))? {
            crates.push(CrateDir { name, dir });
        }
    }
    // The root package (`mlc-pcm`) has its own src/.
    if let Some(name) = package_name(&root.join("Cargo.toml"))? {
        crates.push(CrateDir {
            name,
            dir: root.to_path_buf(),
        });
    }
    Ok(crates)
}

/// The `name = "…"` of a manifest's `[package]` section, if present.
fn package_name(manifest: &Path) -> io::Result<Option<String>> {
    let text = match fs::read_to_string(manifest) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            if let Some(name) = line.split('"').nth(1) {
                return Ok(Some(name.to_string()));
            }
        }
    }
    Ok(None)
}

/// A crate's direct `[dependencies]` entries from its manifest
/// (`pcm-core.workspace = true` / `pcm-core = { … }` forms).
fn direct_deps(manifest: &Path) -> io::Result<BTreeSet<String>> {
    let text = match fs::read_to_string(manifest) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(e) => return Err(e),
    };
    let mut deps = BTreeSet::new();
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            deps.insert(name);
        }
    }
    Ok(deps)
}

/// Parse every lintable file of the workspace into the item model the
/// inter-procedural analyses run on.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for krate in workspace_crates(root)? {
        deps.insert(
            krate.name.clone(),
            direct_deps(&krate.dir.join("Cargo.toml"))?,
        );
        let src_dir = krate.dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs_files(&src_dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            files.push(SourceFile::parse(&rel, &krate.name, &src));
        }
    }
    Ok(Workspace::new(files, &deps))
}

/// All diagnostics for a loaded workspace, *before* allow filtering:
/// per-file rules on every file plus one lock-order pass over the
/// whole item model.
fn raw_workspace_diagnostics(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        out.extend(raw_file_diagnostics(f));
    }
    lock_order::check(ws, &mut out);
    out
}

/// Lint every `src/**/*.rs` of every workspace crate — per-file rules
/// plus the workspace-wide lock-order analysis. Diagnostics come back
/// allow-filtered and sorted by file, then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let ws = load_workspace(root)?;
    let by_rel: BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut out = raw_workspace_diagnostics(&ws);
    out.retain(|d| {
        by_rel
            .get(d.file.as_str())
            .is_none_or(|f| !f.is_allowed(d.rule, d.line))
    });
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(out)
}

/// The suppression audit: re-run every rule with filtering off and
/// report each `// pcm-lint: allow(<rule>)` whose rule no longer fires
/// on the line it covers (its own or the one below), plus allows
/// naming unknown rule ids. Returns `(total_allow_sites, stale)`.
pub fn audit_allows(root: &Path) -> io::Result<(usize, Vec<StaleAllow>)> {
    let ws = load_workspace(root)?;
    let raw = raw_workspace_diagnostics(&ws);
    let mut fired: BTreeSet<(&str, &str, u32)> = BTreeSet::new();
    for d in &raw {
        fired.insert((d.file.as_str(), d.rule, d.line));
    }
    let known = rules::known_rule_ids();
    let mut total = 0usize;
    let mut stale = Vec::new();
    for f in &ws.files {
        for (line, rule) in f.allow_sites() {
            total += 1;
            if !known.contains(&rule.as_str()) {
                stale.push(StaleAllow {
                    file: f.rel.clone(),
                    line,
                    rule,
                    reason: format!("no rule by that id (known: {})", known.join(", ")),
                });
                continue;
            }
            // An allow covers its own line and the next one.
            let live = fired.contains(&(f.rel.as_str(), rule.as_str(), line))
                || fired.contains(&(f.rel.as_str(), rule.as_str(), line + 1));
            if !live {
                stale.push(StaleAllow {
                    file: f.rel.clone(),
                    line,
                    rule,
                    reason: "the suppressed rule no longer fires here; delete the comment"
                        .to_string(),
                });
            }
        }
    }
    stale.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok((total, stale))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_suppresses_the_diagnostic() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // pcm-lint: allow(no-panic-lib)\n}\n";
        assert!(lint_source("lib.rs", "pcm-core", src).is_empty());
        let src_no_allow = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let diags = lint_source("lib.rs", "pcm-core", src_no_allow);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-panic-lib");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn rules_scope_by_crate() {
        // unwrap in a non-library crate (bench) is fine.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("lib.rs", "pcm-bench", src).is_empty());
        assert_eq!(lint_source("lib.rs", "pcm-ecc", src).len(), 1);
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic {
            rule: "no-panic-lib",
            file: "a\\b.rs".into(),
            line: 1,
            col: 2,
            message: "say \"hi\"".into(),
            suggestion: "line\nbreak".into(),
        };
        let j = d.to_json();
        assert!(j.contains(r#""file":"a\\b.rs""#));
        assert!(j.contains(r#"say \"hi\""#));
        assert!(j.contains(r#"line\nbreak"#));
    }

    #[test]
    fn expected_markers_parse() {
        let src = "fn f() {\n    x.unwrap(); //~ no-panic-lib\n}\n";
        assert_eq!(expected_markers(src), vec![(2, "no-panic-lib".into())]);
    }

    #[test]
    fn json_documents_parse_and_carry_the_schema_fields() {
        let diags = vec![Diagnostic {
            rule: "no-panic-lib",
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
            suggestion: "s".into(),
        }];
        let doc = json::parse(&json_document(&diags)).expect("valid json");
        assert_eq!(
            doc.get("schema_version").and_then(json::Value::as_u64),
            Some(u64::from(JSON_SCHEMA_VERSION))
        );
        assert_eq!(doc.get("mode").and_then(json::Value::as_str), Some("lint"));
        assert_eq!(doc.get("count").and_then(json::Value::as_u64), Some(1));

        let stale = vec![StaleAllow {
            file: "a.rs".into(),
            line: 9,
            rule: "no-float-tick".into(),
            reason: "r".into(),
        }];
        let doc = json::parse(&audit_json_document(4, &stale)).expect("valid json");
        assert_eq!(
            doc.get("mode").and_then(json::Value::as_str),
            Some("audit-allows")
        );
        assert_eq!(
            doc.get("allow_count").and_then(json::Value::as_u64),
            Some(4)
        );
        assert_eq!(
            doc.get("stale_count").and_then(json::Value::as_u64),
            Some(1)
        );
    }
}
