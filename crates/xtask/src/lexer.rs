//! A hand-rolled Rust lexer for `pcm-lint`.
//!
//! The workspace builds hermetically (no registry access), so the lint
//! pass cannot use `syn`/`proc-macro2`. Fortunately none of the enforced
//! invariants need full parsing — they are all expressible over a token
//! stream with accurate source positions, provided the lexer gets the
//! classic traps right:
//!
//! * strings (`"…"`, `b"…"`) with escapes, raw strings (`r"…"`,
//!   `r##"…"##`) with arbitrary hash counts;
//! * line comments (incl. doc comments — which is how code inside
//!   `///` doc examples is excluded from every rule) and *nested*
//!   block comments;
//! * `'a` lifetimes vs `'a'` char literals vs `'\n'` escapes;
//! * raw identifiers (`r#fn`), numeric literals with suffixes
//!   (`1_000u64`, `2.5e-3f32`) and the `1..n` range trap.
//!
//! Tokens carry 1-based `line:col` so diagnostics are span-accurate.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// A character or byte literal, quotes included.
    CharLit,
    /// A (possibly byte) string literal, quotes included.
    StrLit,
    /// A raw (possibly byte) string literal, quotes and hashes included.
    RawStrLit,
    /// An integer literal.
    IntLit,
    /// A floating-point literal (has a fraction, exponent, or f32/f64
    /// suffix).
    FloatLit,
    /// Punctuation. Multi-character operators the rules care about
    /// (`::`, `+=`, `-=`, `*=`, `/=`, `..`, `..=`, `->`, `=>`, `&&`,
    /// `||`, `==`, `!=`, `<=`, `>=`, `<<`, `>>`) are single tokens.
    Punct,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment (nesting handled).
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters, not bytes).
    pub col: u32,
}

impl Token {
    fn new(kind: TokKind, text: impl Into<String>, line: u32, col: u32) -> Self {
        Self {
            kind,
            text: text.into(),
            line,
            col,
        }
    }
}

/// Lex `src` into a token stream (comments included, whitespace dropped).
///
/// The lexer is total: unexpected bytes become single-character `Punct`
/// tokens rather than errors, so a half-edited file still lints.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

const JOINED_PUNCT: &[&str] = &[
    "..=", "::", "+=", "-=", "*=", "/=", "..", "->", "=>", "&&", "||", "==", "!=", "<=", ">=",
    "<<", ">>",
];

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn is_ident_start(c: char) -> bool {
        c == '_' || c.is_alphabetic()
    }

    fn is_ident_continue(c: char) -> bool {
        c == '_' || c.is_alphanumeric()
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == 'r' && self.raw_string_ahead(1) {
                self.raw_string(line, col, 1);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_string_ahead(2) {
                self.raw_string(line, col, 2);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                self.string(line, col, "b");
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_lit(line, col, "b");
            } else if c == '"' {
                self.string(line, col, "");
            } else if c == '\'' {
                self.lifetime_or_char(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if Self::is_ident_start(c) {
                self.ident(line, col);
            } else {
                self.punct(line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out
            .push(Token::new(TokKind::LineComment, text, line, col));
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out
            .push(Token::new(TokKind::BlockComment, text, line, col));
    }

    /// Is there `#*"` starting at `self.pos + offset`? Distinguishes the
    /// raw string `r#"…"#` from the raw identifier `r#fn`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, line: u32, col: u32, prefix_len: usize) {
        let mut text = String::new();
        for _ in 0..prefix_len {
            text.push(self.bump().unwrap_or_default()); // r or br
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump().unwrap_or_default());
        }
        text.push(self.bump().unwrap_or_default()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some('#') {
                        matched += 1;
                        text.push(self.bump().unwrap_or_default());
                    }
                    if matched == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        self.out
            .push(Token::new(TokKind::RawStrLit, text, line, col));
    }

    fn string(&mut self, line: u32, col: u32, prefix: &str) {
        let mut text = String::from(prefix);
        text.push(self.bump().unwrap_or_default()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        self.out.push(Token::new(TokKind::StrLit, text, line, col));
    }

    fn char_lit(&mut self, line: u32, col: u32, prefix: &str) {
        let mut text = String::from(prefix);
        text.push(self.bump().unwrap_or_default()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        self.out.push(Token::new(TokKind::CharLit, text, line, col));
    }

    /// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` / `'🦀'` (char).
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        match self.peek(1) {
            // `'\…'` is always a char literal.
            Some('\\') => self.char_lit(line, col, ""),
            Some(c) if Self::is_ident_start(c) => {
                // Scan the identifier; a closing quote right after it means
                // char literal (`'a'`), otherwise it is a lifetime
                // (`'static`, `'a>`).
                let mut i = 2;
                while self.peek(i).is_some_and(Self::is_ident_continue) {
                    i += 1;
                }
                if self.peek(i) == Some('\'') {
                    self.char_lit(line, col, "");
                } else {
                    self.bump(); // the quote
                    let mut name = String::new();
                    while self.peek(0).is_some_and(Self::is_ident_continue) {
                        name.push(self.bump().unwrap_or_default());
                    }
                    self.out
                        .push(Token::new(TokKind::Lifetime, name, line, col));
                }
            }
            // `'{'`-style punctuation chars.
            _ => self.char_lit(line, col, ""),
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut float = false;
        let radix_prefix = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if radix_prefix {
            text.push(self.bump().unwrap_or_default());
            text.push(self.bump().unwrap_or_default());
        }
        // Hex digits only after a radix prefix — a bare `e` in `1e9` must
        // be left for the exponent logic below.
        while self.peek(0).is_some_and(|c| {
            c == '_'
                || if radix_prefix {
                    c.is_ascii_hexdigit()
                } else {
                    c.is_ascii_digit()
                }
        }) {
            text.push(self.bump().unwrap_or_default());
        }
        // Fraction: only for non-radix literals, and only when the `.` is
        // not the start of `..` or a method call like `1.pow(…)`.
        if !radix_prefix
            && self.peek(0) == Some('.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            float = true;
            text.push(self.bump().unwrap_or_default());
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(self.bump().unwrap_or_default());
            }
        }
        // Trailing-dot float (`1.` followed by neither `.` nor an ident).
        if !radix_prefix
            && !float
            && self.peek(0) == Some('.')
            && !self
                .peek(1)
                .is_some_and(|c| c == '.' || Self::is_ident_start(c))
        {
            float = true;
            text.push(self.bump().unwrap_or_default());
        }
        // Exponent.
        if !radix_prefix
            && matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            text.push(self.bump().unwrap_or_default());
            if matches!(self.peek(0), Some('+' | '-')) {
                text.push(self.bump().unwrap_or_default());
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                text.push(self.bump().unwrap_or_default());
            }
        }
        // Type suffix (`u64`, `f32`, …).
        let mut suffix = String::new();
        while self.peek(0).is_some_and(Self::is_ident_continue) {
            suffix.push(self.bump().unwrap_or_default());
        }
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float {
            TokKind::FloatLit
        } else {
            TokKind::IntLit
        };
        self.out.push(Token::new(kind, text, line, col));
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(Self::is_ident_continue) {
            text.push(self.bump().unwrap_or_default());
        }
        // Raw identifier `r#fn`: strip the sigil so rules match on the name.
        if text == "r"
            && self.peek(0) == Some('#')
            && self.peek(1).is_some_and(Self::is_ident_start)
        {
            self.bump();
            text.clear();
            while self.peek(0).is_some_and(Self::is_ident_continue) {
                text.push(self.bump().unwrap_or_default());
            }
        }
        self.out.push(Token::new(TokKind::Ident, text, line, col));
    }

    fn punct(&mut self, line: u32, col: u32) {
        for joined in JOINED_PUNCT {
            if joined
                .chars()
                .enumerate()
                .all(|(i, c)| self.peek(i) == Some(c))
            {
                for _ in 0..joined.chars().count() {
                    self.bump();
                }
                self.out
                    .push(Token::new(TokKind::Punct, *joined, line, col));
                return;
            }
        }
        let c = self.bump().unwrap_or_default();
        self.out
            .push(Token::new(TokKind::Punct, c.to_string(), line, col));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("fn foo(x: u64) -> bool { x += 1; x == 2 }");
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokKind::Punct, "==".into())));
    }

    #[test]
    fn strings_with_escapes_hide_their_contents() {
        // The quoted `unwrap()` must come out as one StrLit token, never
        // as an Ident a rule could match.
        let toks = kinds(r#"let s = "call unwrap() \" quoted";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).count(),
            2, // let, s
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"panic! " inside"#; let t = 1;"###);
        let raw = toks
            .iter()
            .find(|(k, _)| *k == TokKind::RawStrLit)
            .expect("raw string lexed");
        assert!(raw.1.contains("panic!"));
        // Lexing resumed correctly after the raw string.
        assert!(toks.contains(&(TokKind::Ident, "t".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"assert!"; let b = b'x';"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::CharLit && t == "b'x'"));
    }

    #[test]
    fn line_and_block_comments_including_nested() {
        let toks = kinds("code /* outer /* inner */ still */ more // tail unwrap()");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::BlockComment
            && t.contains("inner")
            && t.contains("still")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("tail")));
        // `unwrap` in the comment is not an Ident token.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(toks.contains(&(TokKind::Ident, "more".into())));
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// example: `x.unwrap()`\nfn f() {}");
        assert!(matches!(toks[0], (TokKind::LineComment, _)));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks =
            kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let s = 'static_lt; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3, "{lifetimes:?}");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 2, "{chars:?}");
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("1 1_000u64 0xFF 2.5 1e9 2.5e-3f32 1f64 0..n 1.max(2)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::FloatLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["2.5", "1e9", "2.5e-3f32", "1f64"]);
        // `0..n` keeps `..` as punct, `1.max` keeps `1` an int.
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn raw_identifiers_strip_the_sigil() {
        let toks = kinds("let r#fn = 1; r#unwrap();");
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokKind::Ident, "unwrap".into())));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab cd\n  ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }
}
