//! The `obs-report` subcommand: read a `pcm-telemetry` JSONL export
//! and print the [`pcm_telemetry::report`] summary.
//!
//! This module is a thin I/O wrapper — all analysis lives in
//! `pcm_telemetry::report` so library users and the
//! `telemetry_explorer` example get exactly the same numbers as the
//! CLI.

/// Parsed `obs-report` flags.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit the report as one JSON object instead of tables.
    pub json: bool,
    /// Rows in the top-risk-banks table.
    pub top: usize,
    /// Fail (nonzero exit) when any bank dropped samples to ring wrap
    /// — a dropped sample means the summaries undercount.
    pub strict: bool,
}

/// Read `path` and render its report per `opts`. Errors are returned as
/// display-ready strings so `main` stays a thin exit-code adapter.
pub fn report_file(path: &str, opts: &Options) -> Result<String, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    report_str(&doc, opts).map_err(|e| format!("{path}: {e}"))
}

/// [`report_file`] over an in-memory document (testable without I/O).
pub fn report_str(doc: &str, opts: &Options) -> Result<String, String> {
    let top = if opts.top == 0 { 10 } else { opts.top };
    let report = pcm_telemetry::report::analyze_str(doc, top).map_err(|e| e.to_string())?;
    let total_dropped: u64 = report.per_bank.iter().map(|b| b.dropped).sum();
    if opts.strict && total_dropped > 0 {
        return Err(format!(
            "strict: {total_dropped} sample(s) dropped to ring wrap — the summaries \
             undercount; re-record with a larger telemetry capacity"
        ));
    }
    Ok(if opts.json {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        report.render_text()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        use pcm_telemetry::{BankCounters, TelemetryConfig, TelemetryRecorder};
        use pcm_trace::Recorder;
        let rec = TelemetryRecorder::new(2, TelemetryConfig::new(1000).with_capacity(16));
        let tracer = Recorder::disabled();
        let mut c0 = BankCounters::default();
        let mut c1 = BankCounters::default();
        for step in 1..=8u64 {
            c0.reads += 4;
            c0.busy_ns += 800;
            c1.scrubs += 1;
            c1.busy_ns += 1200;
            c1.corrected_symbols += step * 30;
            rec.sample_up_to(step * 1000, &[c0.clone(), c1.clone()], &tracer);
        }
        rec.snapshot().to_jsonl()
    }

    #[test]
    fn text_report_renders_tables() {
        let out = report_str(&sample_doc(), &Options::default()).unwrap();
        assert!(out.contains("2 banks"), "{out}");
        assert!(out.contains("top risk banks"), "{out}");
    }

    #[test]
    fn json_report_has_fixed_shape() {
        let opts = Options {
            json: true,
            top: 5,
            strict: false,
        };
        let out = report_str(&sample_doc(), &opts).unwrap();
        assert!(out.starts_with("{\"banks\":2,"), "{out}");
        assert!(out.contains("\"per_bank\":["), "{out}");
        assert!(out.contains("\"top_risk\":["), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        // Byte-stable across invocations.
        assert_eq!(out, report_str(&sample_doc(), &opts).unwrap());
    }

    #[test]
    fn bad_input_is_an_error_string() {
        assert!(report_str("nope\n", &Options::default()).is_err());
        assert!(report_file("/nonexistent/telemetry.jsonl", &Options::default()).is_err());
    }

    #[test]
    fn strict_fails_on_dropped_samples() {
        use pcm_telemetry::{BankCounters, TelemetryConfig, TelemetryRecorder};
        use pcm_trace::Recorder;
        // A 2-point ring receiving 8 samples must drop 6 per bank.
        let rec = TelemetryRecorder::new(1, TelemetryConfig::new(1000).with_capacity(2));
        let tracer = Recorder::disabled();
        let mut c = BankCounters::default();
        for step in 1..=8u64 {
            c.reads += 1;
            c.busy_ns += 200;
            rec.sample_up_to(step * 1000, &[c.clone()], &tracer);
        }
        let doc = rec.snapshot().to_jsonl();
        let strict = Options {
            strict: true,
            ..Options::default()
        };
        // Lax mode still renders; strict mode refuses.
        assert!(report_str(&doc, &Options::default()).is_ok());
        let err = report_str(&doc, &strict).unwrap_err();
        assert!(err.contains("dropped"), "{err}");
        // A loss-free export passes strict.
        assert!(report_str(&sample_doc(), &strict).is_ok());
    }
}
