//! The `profile-report` subcommand: read a ctx-carrying `pcm-trace`
//! JSONL file and print the [`pcm_sim::profile`] causal attribution —
//! per-request latency split into named buckets, the per-kind rollup,
//! and scrub-interference-by-bank.
//!
//! This module is a thin I/O wrapper — all analysis lives in
//! `pcm_sim::profile` so library users and the `store_throughput`
//! bench's `--profile-out` path get exactly the same numbers as the
//! CLI. It accepts either input format: a raw ctx-carrying trace
//! (attribution is built here) or an already-built profile JSONL as
//! written by `--profile-out` (distinguished by its `"profile":1`
//! meta line).

/// Parsed `profile-report` flags.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit the report as one JSON object instead of tables.
    pub json: bool,
    /// Rows in the slowest-requests table.
    pub top: usize,
    /// Emit collapsed-stack (flamegraph folded) lines instead of the
    /// report — pipe straight into `flamegraph.pl` / `inferno`.
    pub folded: bool,
}

/// Read `path` and render its attribution per `opts`. Errors are
/// returned as display-ready strings so `main` stays a thin exit-code
/// adapter.
pub fn report_file(path: &str, opts: &Options) -> Result<String, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    report_str(&doc, opts).map_err(|e| format!("{path}: {e}"))
}

/// [`report_file`] over an in-memory document (testable without I/O).
pub fn report_str(doc: &str, opts: &Options) -> Result<String, String> {
    let top = if opts.top == 0 { 10 } else { opts.top };
    // A profile JSONL declares itself on its meta line; anything else
    // is treated as a raw trace and attributed here.
    let already_built = doc
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"profile\":"));
    let profile = if already_built {
        pcm_sim::profile::parse(doc)
    } else {
        pcm_sim::profile::build(doc)
    }
    .map_err(|e| e.to_string())?;
    Ok(if opts.folded {
        profile.to_folded()
    } else if opts.json {
        let mut s = profile.to_json();
        s.push('\n');
        s
    } else {
        profile.render_text(top)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        use pcm_trace::{jsonl, pack_ctx, CtxClass, OpKind, Recorder, TraceConfig, CTX_INDEX_FLAG};
        let rec = Recorder::buffered(2, &TraceConfig::new(64));
        let kv = pack_ctx(CtxClass::Kv, 1, 0);
        rec.span_ctx(
            OpKind::Read,
            0,
            1,
            (1000, 1200),
            (0, 0),
            kv | CTX_INDEX_FLAG,
        );
        rec.span_ctx(OpKind::Read, 0, 9, (1200, 1400), (0, 0), kv);
        rec.span_ctx(OpKind::KvGet, 0, 1, (1000, 1400), (7, 2), kv);
        let scrub = pack_ctx(CtxClass::Scrub, 1, 0);
        rec.span_ctx(OpKind::Refresh, 1, 7, (4000, 5200), (0, 0), scrub);
        rec.span_ctx(
            OpKind::ScrubPass,
            1,
            pcm_trace::NO_BLOCK,
            (4000, 5200),
            (1, 1),
            scrub,
        );
        jsonl::export(&rec.buffer().expect("buffered").snapshot())
    }

    #[test]
    fn text_report_renders_tables() {
        let out = report_str(&sample_doc(), &Options::default()).unwrap();
        assert!(out.contains("latency attribution by request kind"), "{out}");
        assert!(out.contains("kv_get"), "{out}");
    }

    #[test]
    fn json_report_has_fixed_shape() {
        let opts = Options {
            json: true,
            top: 5,
            folded: false,
        };
        let out = report_str(&sample_doc(), &opts).unwrap();
        assert!(out.starts_with("{\"banks\":2,"), "{out}");
        assert!(out.contains("\"kinds\":["), "{out}");
        assert!(out.contains("\"scrub_interference\":["), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
        // Byte-stable across invocations.
        assert_eq!(out, report_str(&sample_doc(), &opts).unwrap());
    }

    #[test]
    fn folded_output_is_collapsed_stacks() {
        let opts = Options {
            folded: true,
            ..Options::default()
        };
        let out = report_str(&sample_doc(), &opts).unwrap();
        assert!(out.contains("kv_get;alloc_index 200\n"), "{out}");
        assert!(out.contains("scrub_pass;media 1200\n"), "{out}");
        // Every line is `frames weight`.
        for line in out.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight column");
            assert!(stack.contains(';'), "{line}");
            assert!(weight.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn accepts_an_already_built_profile_document() {
        let profile = pcm_sim::profile::build(&sample_doc()).unwrap();
        let from_trace = report_str(&sample_doc(), &Options::default()).unwrap();
        let from_profile = report_str(&profile.to_jsonl(), &Options::default()).unwrap();
        assert_eq!(from_trace, from_profile);
    }

    #[test]
    fn bad_input_is_an_error_string() {
        assert!(report_str("nope\n", &Options::default()).is_err());
        assert!(report_file("/nonexistent/trace.jsonl", &Options::default()).is_err());
    }
}
