//! A minimal JSON value model and parser.
//!
//! `cargo lint --json` promises a *stable, documented* schema
//! (DESIGN.md §15); the round-trip test in `tests/fixtures.rs` parses
//! the emitted document back and checks the schema fields, which needs
//! a JSON reader — and the workspace builds hermetically, so there is
//! no serde. This parser covers exactly the JSON pcm-lint emits
//! (objects, arrays, strings with `\"`/`\\`/`\n`/`\t`/`\u` escapes,
//! unsigned integers, booleans, null); it is not a general-purpose
//! JSON library.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers pcm-lint emits are unsigned integers.
    Num(u64),
    /// Non-integer numbers (bench documents carry throughput figures
    /// like `"kops_per_model_sec": 12.345`; pcm-lint itself never emits
    /// these).
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Any numeric leaf as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b'-') => parse_num(b, pos),
        Some(c) if c.is_ascii_digit() => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at offset {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut float = false;
    if b.get(*pos) == Some(&b'.') {
        float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| format!("invalid number at offset {start}"))?;
    if float || text.starts_with('-') {
        // Integers stay `Num`; anything with a fraction, exponent, or
        // sign becomes `Float` (negative integers are rare enough in
        // our documents not to deserve a third variant).
        text.parse()
            .map(Value::Float)
            .map_err(|_| format!("invalid number at offset {start}"))
    } else {
        text.parse()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at offset {start}"))
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through byte-wise.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| "invalid utf-8 in string")?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at offset {pos}"));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2, {"b": "x\ny", "c": true}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        let inner = &v.get("a").unwrap().as_arr().unwrap()[2];
        assert_eq!(inner.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(inner.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn floats_parse_as_float_leaves() {
        let v = parse(r#"{"kops": 12.345, "neg": -3, "exp": 1.5e3, "int": 7}"#).unwrap();
        assert_eq!(v.get("kops").unwrap().as_f64(), Some(12.345));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("exp").unwrap().as_f64(), Some(1500.0));
        assert_eq!(v.get("int"), Some(&Value::Num(7)));
        assert_eq!(v.get("int").unwrap().as_f64(), Some(7.0));
        assert!(parse("{\"bad\": 1.}").is_ok(), "lenient empty fraction");
        assert!(parse("{\"bad\": .5}").is_err(), "no leading-dot numbers");
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": "#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn unicode_escapes_and_multibyte_round_trip() {
        assert_eq!(parse("\"a\\u00e9b\"").unwrap().as_str(), Some("a\u{e9}b"));
        assert_eq!(parse(r#""aéb""#).unwrap().as_str(), Some("aéb"));
    }
}
