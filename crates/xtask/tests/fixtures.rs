//! The lint's self-test corpus: every rule ships an expected-pass /
//! expected-fail fixture pair under `fixtures/`. Fail fixtures carry
//! trailing `//~ <rule-id>` markers; the lint must produce exactly one
//! diagnostic of that rule on each marked line, and nothing else.

use std::path::Path;

/// (fixture stem, crate name the fixture pretends to live in).
const CASES: &[(&str, &str)] = &[
    ("no_panic_lib", "pcm-core"),
    ("float_tick", "pcm-device"),
    ("ambient", "pcm-sim"),
    ("ambient_trace", "pcm-trace"),
    ("lock_discipline", "pcm-device"),
    ("deprecated_internal", "pcm-bench"),
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn fail_fixtures_flag_exactly_the_marked_lines() {
    for (case, krate) in CASES {
        let name = format!("{case}_fail.rs");
        let src = fixture(&name);
        let got: Vec<(u32, String)> = xtask::lint_source(&name, krate, &src)
            .into_iter()
            .map(|d| (d.line, d.rule.to_string()))
            .collect();
        let want = xtask::expected_markers(&src);
        assert!(!want.is_empty(), "fixture {name} has no //~ markers");
        assert_eq!(got, want, "fixture {name}: wrong diagnostics");
    }
}

#[test]
fn pass_fixtures_are_clean() {
    for (case, krate) in CASES {
        let name = format!("{case}_pass.rs");
        let src = fixture(&name);
        let diags = xtask::lint_source(&name, krate, &src);
        assert!(
            diags.is_empty(),
            "fixture {name} expected clean, got:\n{}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn fail_fixtures_report_nonzero_via_every_rule() {
    // Sanity: collectively, the fail corpus exercises all five rules.
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (case, krate) in CASES {
        let name = format!("{case}_fail.rs");
        for d in xtask::lint_source(&name, krate, &fixture(&name)) {
            seen.insert(d.rule.to_string());
        }
    }
    let all: std::collections::BTreeSet<String> = xtask::rules::all()
        .iter()
        .map(|r| r.id().to_string())
        .collect();
    assert_eq!(seen, all, "some rule has no failing fixture coverage");
}

#[test]
fn workspace_tree_is_clean() {
    // The real tree must stay lint-clean: every invariant violation is
    // either fixed or carries a justified allow. This is the same check
    // CI runs via `cargo lint`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let diags = xtask::lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace has {} lint diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
