//! The lint's self-test corpus: every rule ships an expected-pass /
//! expected-fail fixture pair under `fixtures/`. Fail fixtures carry
//! trailing `//~ <rule-id>` markers; the lint must produce exactly one
//! diagnostic of that rule on each marked line, and nothing else.
//! Alongside the fixture pairs: the injected-regression tests (a bare
//! `Relaxed` spliced into the real `pcm-device::concurrent` source, a
//! stale allow spliced into a clean file), the `--json` schema
//! round-trip, and the `workspace_tree_is_clean` gate.

use std::path::{Path, PathBuf};

/// (fixture stem, crate name the fixture pretends to live in).
const CASES: &[(&str, &str)] = &[
    ("no_panic_lib", "pcm-core"),
    ("float_tick", "pcm-device"),
    ("ambient", "pcm-sim"),
    ("ambient_trace", "pcm-trace"),
    ("lock_order", "pcm-device"),
    ("atomic_ordering", "pcm-device"),
    ("deprecated_internal", "pcm-bench"),
    ("telemetry_tick", "pcm-telemetry"),
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn fail_fixtures_flag_exactly_the_marked_lines() {
    for (case, krate) in CASES {
        let name = format!("{case}_fail.rs");
        let src = fixture(&name);
        let got: Vec<(u32, String)> = xtask::lint_source(&name, krate, &src)
            .into_iter()
            .map(|d| (d.line, d.rule.to_string()))
            .collect();
        let want = xtask::expected_markers(&src);
        assert!(!want.is_empty(), "fixture {name} has no //~ markers");
        assert_eq!(got, want, "fixture {name}: wrong diagnostics");
    }
}

#[test]
fn pass_fixtures_are_clean() {
    for (case, krate) in CASES {
        let name = format!("{case}_pass.rs");
        let src = fixture(&name);
        let diags = xtask::lint_source(&name, krate, &src);
        assert!(
            diags.is_empty(),
            "fixture {name} expected clean, got:\n{}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn fail_fixtures_report_nonzero_via_every_rule() {
    // Sanity: collectively, the fail corpus exercises every per-file
    // rule plus the workspace-level lock-order analysis.
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (case, krate) in CASES {
        let name = format!("{case}_fail.rs");
        for d in xtask::lint_source(&name, krate, &fixture(&name)) {
            seen.insert(d.rule.to_string());
        }
    }
    let all: std::collections::BTreeSet<String> = xtask::rules::known_rule_ids()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(seen, all, "some rule has no failing fixture coverage");
}

#[test]
fn workspace_tree_is_clean() {
    // The real tree must stay lint-clean: every invariant violation is
    // either fixed or carries a justified allow. This is the same check
    // CI runs via `cargo lint`.
    let diags = xtask::lint_workspace(&workspace_root()).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace has {} lint diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_allows_are_all_live() {
    // The companion CI gate: `cargo lint --audit-allows` must find no
    // stale suppression in the real tree.
    let (total, stale) = xtask::audit_allows(&workspace_root()).expect("workspace walk");
    assert!(total > 0, "expected some allow sites in the tree");
    assert!(
        stale.is_empty(),
        "{} stale allow(s):\n{}",
        stale.len(),
        stale
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn injected_bare_relaxed_in_concurrent_is_caught() {
    // The acceptance-criteria regression: splice a bare `Relaxed`
    // cross-bank flag into the real pcm-device::concurrent source and
    // the atomic-ordering rule must fire on exactly the injected line.
    let path = workspace_root().join("crates/pcm-device/src/concurrent.rs");
    let src = std::fs::read_to_string(&path).expect("read concurrent.rs");
    assert!(
        xtask::lint_source("crates/pcm-device/src/concurrent.rs", "pcm-device", &src).is_empty(),
        "pristine concurrent.rs must lint clean"
    );
    let marker = "pub struct";
    let at = src.find(marker).expect("an item to inject before");
    let injected = format!(
        "{}pub fn racy_flag(f: &std::sync::atomic::AtomicU64) -> u64 {{\n    \
         f.fetch_add(1, std::sync::atomic::Ordering::Relaxed)\n}}\n\n{}",
        &src[..at],
        &src[at..]
    );
    let inject_line = injected
        .lines()
        .position(|l| l.contains("fetch_add(1, std::sync::atomic::Ordering::Relaxed)"))
        .expect("injected line present") as u32
        + 1;
    let diags = xtask::lint_source(
        "crates/pcm-device/src/concurrent.rs",
        "pcm-device",
        &injected,
    );
    assert_eq!(
        diags.len(),
        1,
        "want exactly the injected finding:\n{diags:?}"
    );
    assert_eq!(diags[0].rule, "atomic-ordering");
    assert_eq!(diags[0].line, inject_line);
    assert!(diags[0].message.contains("bare `Ordering::Relaxed`"));
}

#[test]
fn injected_out_of_order_acquisition_in_store_is_caught() {
    // Same shape for the lock graph: add a helper to the real
    // pcm-store::store source that takes a bank guard and then the
    // stripe lock — an edge that inverts the declared order.
    let path = workspace_root().join("crates/pcm-store/src/store.rs");
    let src = std::fs::read_to_string(&path).expect("read store.rs");
    // `lock_bank` is the declared bank wrapper (it lives in
    // pcm-device); the analysis keys wrapper calls on the name, so the
    // injected helper inverts the order without defining anything new.
    let bad = "\n\
        fn upside_down(stripe: &std::sync::Mutex<()>, bank: &std::sync::Mutex<u64>) {\n    \
            let _b = lock_bank(bank);\n    \
            let _s = lock_stripe(stripe);\n\
        }\n";
    let injected = format!("{src}{bad}");
    let diags = xtask::lint_source("crates/pcm-store/src/store.rs", "pcm-store", &injected);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "lock-order" && d.message.contains("holding `bank`")),
        "want an out-of-order finding:\n{diags:?}"
    );
}

#[test]
fn stale_allow_is_reported_with_file_and_line() {
    // Unit-level audit check (the workspace-level one is
    // `workspace_allows_are_all_live`): an allow whose rule cannot fire
    // on its lines is stale, and unknown rule ids are always stale.
    let src = "\
        // pcm-lint: allow(no-panic-lib) — nothing panics here\n\
        fn quiet() -> u32 {\n    7\n}\n\
        // pcm-lint: allow(lock-discipline) — rule retired in PR 7\n\
        fn also_quiet() {}\n";
    let f = xtask::source::SourceFile::parse("s.rs", "pcm-core", src);
    let sites = f.allow_sites();
    assert_eq!(sites.len(), 2);
    assert_eq!(sites[0], (1, "no-panic-lib".to_string()));
    assert_eq!(sites[1], (5, "lock-discipline".to_string()));
    // No diagnostics fire anywhere in this file…
    assert!(xtask::lint_source("s.rs", "pcm-core", src).is_empty());
    // …and `lock-discipline` is no longer a known rule id.
    assert!(!xtask::rules::known_rule_ids().contains(&"lock-discipline"));
}

#[test]
fn lint_json_document_round_trips_through_the_schema() {
    // `--json` promises schema_version 1 with a fixed field set; parse
    // the document the binary would print and check every field.
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let diags = xtask::lint_source("lib.rs", "pcm-core", src);
    assert_eq!(diags.len(), 1);
    let doc = xtask::json::parse(&xtask::json_document(&diags)).expect("valid JSON");
    assert_eq!(
        doc.get("schema_version")
            .and_then(xtask::json::Value::as_u64),
        Some(u64::from(xtask::JSON_SCHEMA_VERSION))
    );
    assert_eq!(
        doc.get("tool").and_then(xtask::json::Value::as_str),
        Some("pcm-lint")
    );
    assert_eq!(
        doc.get("mode").and_then(xtask::json::Value::as_str),
        Some("lint")
    );
    assert_eq!(
        doc.get("count").and_then(xtask::json::Value::as_u64),
        Some(1)
    );
    let items = doc
        .get("diagnostics")
        .and_then(xtask::json::Value::as_arr)
        .expect("diagnostics array");
    assert_eq!(items.len(), 1);
    let d = &items[0];
    assert_eq!(
        d.get("rule").and_then(xtask::json::Value::as_str),
        Some("no-panic-lib")
    );
    assert_eq!(
        d.get("file").and_then(xtask::json::Value::as_str),
        Some("lib.rs")
    );
    assert_eq!(d.get("line").and_then(xtask::json::Value::as_u64), Some(2));
    for key in ["col", "message", "suggestion"] {
        assert!(d.get(key).is_some(), "diagnostic field `{key}` missing");
    }

    // The audit document carries its own mode and counts.
    let stale = vec![xtask::StaleAllow {
        file: "a.rs".into(),
        line: 3,
        rule: "no-float-tick".into(),
        reason: "gone".into(),
    }];
    let doc = xtask::json::parse(&xtask::audit_json_document(9, &stale)).expect("valid JSON");
    assert_eq!(
        doc.get("mode").and_then(xtask::json::Value::as_str),
        Some("audit-allows")
    );
    assert_eq!(
        doc.get("allow_count").and_then(xtask::json::Value::as_u64),
        Some(9)
    );
    assert_eq!(
        doc.get("stale_count").and_then(xtask::json::Value::as_u64),
        Some(1)
    );
    let arr = doc
        .get("stale")
        .and_then(xtask::json::Value::as_arr)
        .expect("stale array");
    assert_eq!(
        arr[0].get("rule").and_then(xtask::json::Value::as_str),
        Some("no-float-tick")
    );
}
