//! Offline stand-in for the `proptest` crate.
//!
//! The workspace pins its external dependencies to local shim crates so it
//! builds in hermetic environments with no registry access. This shim
//! implements the subset of proptest's API the repository actually uses:
//!
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges, tuples,
//!   and the [`collection`] combinators (`vec`, `btree_set`);
//! * `any::<T>()` over the primitive types;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`) and the
//!   `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` assertions;
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in two deliberate ways: failing
//! cases are *not shrunk* (the failing inputs are reported as-is via the
//! panic message of the underlying `assert!`), and regression files are
//! ignored. Generation is deterministically seeded from the test's module
//! path and name, so runs are reproducible.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step (seeding and stream generation).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic test RNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary string (we use the test's full path so
    /// each property gets an independent, reproducible stream).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Lemire's method without the bias-rejection loop is fine for tests.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Run configuration: how many cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_bounded(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_bounded(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.next_bounded((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates are redrawn, with an attempt cap so tiny domains
            // cannot loop forever; like proptest, the set may come up short
            // when the element domain is nearly exhausted.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 64 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` strategy with sizes drawn from `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Property assertion; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; identical to `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion; identical to `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(binding in strategy, ..) { .. }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u8..=6).generate(&mut rng);
            assert!((3..=6).contains(&v));
            let w = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&w));
            let f = (-8.0f64..8.0).generate(&mut rng);
            assert!((-8.0..8.0).contains(&f));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::TestRng::for_test("collections");
        let v = crate::collection::vec(any::<bool>(), 17).generate(&mut rng);
        assert_eq!(v.len(), 17);
        let s = crate::collection::btree_set(0usize..1000, 4..=4).generate(&mut rng);
        assert_eq!(s.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_iterates(x in 0u32..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
