//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion's API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`Throughput`], [`BenchmarkId`] —
//! backed by a simple adaptive wall-clock timer instead of criterion's
//! statistical machinery. Results print as `name  ...  time/iter` lines.
//!
//! The measurement strategy: warm up briefly, then choose an iteration
//! count targeting ~`measure_ms` of runtime, run three batches, and report
//! the best batch (minimum is the standard robust estimator for
//! micro-benchmarks since it bounds scheduler noise from above).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measured throughput units attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id `"{name}/{parameter}"`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs for
        // roughly 30 ms, bounded so pathological costs still terminate.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 24 {
                let per_iter = elapsed.as_nanos().max(1) / n as u128;
                let target = (30_000_000 / per_iter).max(1) as u64;
                // Measure: three batches, keep the fastest.
                let mut best = Duration::MAX;
                for _ in 0..3 {
                    let start = Instant::now();
                    for _ in 0..target {
                        std::hint::black_box(f());
                    }
                    best = best.min(start.elapsed());
                }
                self.total = best;
                self.iters = target;
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.2} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

fn report(group: Option<&str>, id: &str, throughput: Option<Throughput>, b: &Bencher) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = b.ns_per_iter();
    let mut line = format!("{name:<48} {} /iter", human_time(ns));
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let _ = write!(
                line,
                "   {:9.1} MiB/s",
                bytes as f64 / ns * 1e9 / (1 << 20) as f64
            );
        }
        Some(Throughput::Elements(n)) => {
            let _ = write!(line, "   {:9.3} Melem/s", n as f64 / ns * 1e3);
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Attach a throughput to subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for compatibility; this harness sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this harness sizes runs by wall clock.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), self.throughput, &b);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), self.throughput, &b);
        self
    }

    /// End the group (prints a blank separator).
    pub fn finish(self) {
        println!();
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(None, &id.to_string(), None, &b);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
