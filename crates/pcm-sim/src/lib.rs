//! # pcm-sim — performance and energy simulation of PCM main memory
//!
//! The §7 evaluation substrate of the SC'13 MLC-PCM reproduction: a
//! trace-driven core + memory-system model that reproduces Figure 16's
//! execution-time / energy / power comparison of the four design points
//! (4LC-REF, 4LC-REF-OPT, 4LC-NO-REF, 3LC).
//!
//! * [`config`] — Table 5 parameters, the four design points, the energy
//!   model, and the scaled device geometry (refresh *op rate* preserved
//!   exactly; see DESIGN.md §3).
//! * [`workload`] — deterministic synthetic traces standing in for
//!   SPEC CPU 2006 + STREAM (the McSim substitution).
//! * [`engine`] — the timing/energy engine: banked PCM, 200 ns reads
//!   plus ECC adders, 1 µs writes, the four-write-window (40 MB/s), and
//!   per-bank refresh interference.
//! * [`report`] — the Figure 16 matrix and headline summaries.
//! * [`parallel`] — the concurrent backend: the same matrix fanned out
//!   across OS threads, bit-identical to the sequential run.
//! * [`trace_report`] — offline analysis of `pcm-trace` JSONL files
//!   (the model behind `cargo run -p xtask -- trace-report`).
//! * [`profile`] — causal request profiling: correlation-id grouping,
//!   per-request latency attribution into named buckets, and folded
//!   flamegraph export (behind `cargo run -p xtask -- profile-report`).
//!
//! ```
//! use pcm_sim::config::{DesignPoint, EnergyModel, SimParams};
//! use pcm_sim::engine::simulate;
//! use pcm_sim::workload::WorkloadProfile;
//!
//! let stream = WorkloadProfile::by_name("STREAM").unwrap();
//! let p = SimParams::default();
//! let e = EnergyModel::default();
//! let slow = simulate(&p, &e, DesignPoint::FourLcRef, stream, 500_000, 1);
//! let fast = simulate(&p, &e, DesignPoint::ThreeLc, stream, 500_000, 1);
//! assert!(fast.exec_time_ns < slow.exec_time_ns);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod parallel;
pub mod profile;
pub mod report;
pub mod trace_file;
pub mod trace_report;
pub mod workload;

pub use config::{DesignPoint, EnergyModel, SimParams};
pub use engine::{
    simulate, simulate_ops, simulate_ops_traced, simulate_telemetry, simulate_traced, SimResult,
};
pub use parallel::{figure16_parallel, simulate_matrix};
pub use profile::{ChildSpan, KindAttribution, LatencyBuckets, Profile, RequestProfile};
pub use report::{figure16, summary_gains, Figure16Bar};
pub use trace_file::{FileTrace, TraceParseError};
pub use trace_report::{analyze, analyze_top, TraceReport};
pub use workload::{AccessPattern, MemOp, TraceGenerator, WorkloadProfile};
