//! The timing/energy engine: an in-order core with bounded memory-level
//! parallelism in front of a banked PCM memory with posted writes, the
//! four-write-window bandwidth limiter, and (optionally) periodic
//! per-bank refresh.
//!
//! The mechanisms are exactly §7's: reads occupy their bank for the array
//! latency plus pay an ECC adder; writes and refreshes each consume one
//! write token (four per 6.4 µs window → 40 MB/s) and hold their bank for
//! 1 µs; refresh ops arrive at the device-wide rate `blocks / interval`
//! and, in the 4LC-REF configuration, steal the bank from demand reads.

use crate::config::{DesignPoint, EnergyModel, SimParams};
use crate::workload::{TraceGenerator, WorkloadProfile};
use pcm_device::{telemetry_counters, DeviceMetrics, TelemetryRecorder};
use pcm_trace::{round_ns, OpKind, Recorder, NO_BLOCK};
use std::collections::VecDeque;

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Design point simulated.
    pub design: DesignPoint,
    /// Workload name. Owned, so user-defined trace files can label their
    /// results (not just the built-in `&'static` profile names).
    pub workload: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Demand reads serviced.
    pub reads: u64,
    /// Demand writes serviced.
    pub writes: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// End-to-end execution time, ns.
    pub exec_time_ns: f64,
    /// Energy consumed by demand reads, nJ.
    pub read_energy_nj: f64,
    /// Energy consumed by demand writes, nJ.
    pub write_energy_nj: f64,
    /// Energy consumed by refresh, nJ.
    pub refresh_energy_nj: f64,
    /// Background energy over the run, nJ.
    pub static_energy_nj: f64,
    /// Mean demand-read latency (issue → data back, including queueing
    /// and the ECC adder), ns.
    pub avg_read_latency_ns: f64,
    /// Worst observed demand-read latency, ns.
    pub max_read_latency_ns: f64,
    /// Fraction of the device's write-token bandwidth consumed by
    /// refresh over this run (`refreshes × token_period / exec_time`) —
    /// the §4.1 bandwidth tax, ≈ 0.42 for the default 4LC-REF geometry
    /// and exactly 0 for refresh-free designs.
    pub scrub_bandwidth_tax: f64,
    /// Per-bank busy fraction over the run (demand reads and writes plus
    /// bank-blocking refresh), from the [`DeviceMetrics`] registry the
    /// engine records into. One entry per bank, each in `[0, 1]`.
    pub bank_utilization: Vec<f64>,
}

impl SimResult {
    /// Total energy, nJ.
    pub fn total_energy_nj(&self) -> f64 {
        self.read_energy_nj + self.write_energy_nj + self.refresh_energy_nj + self.static_energy_nj
    }

    /// Average power, W.
    pub fn avg_power_w(&self) -> f64 {
        self.total_energy_nj() / self.exec_time_ns
    }

    /// Instructions per core cycle.
    pub fn ipc(&self, params: &SimParams) -> f64 {
        self.instructions as f64 / (self.exec_time_ns * params.cpu_freq_ghz)
    }
}

/// Run one (design, workload) simulation for `instructions` instructions
/// using the synthetic trace generator.
pub fn simulate(
    params: &SimParams,
    energy: &EnergyModel,
    design: DesignPoint,
    profile: WorkloadProfile,
    instructions: u64,
    seed: u64,
) -> SimResult {
    simulate_traced(
        params,
        energy,
        design,
        profile,
        instructions,
        seed,
        &Recorder::disabled(),
    )
}

/// [`simulate`], recording every memory operation's timing window into
/// `recorder` (bank-blocking refreshes as spans, REF-OPT refreshes as
/// instants). With a disabled recorder this is exactly [`simulate`].
pub fn simulate_traced(
    params: &SimParams,
    energy: &EnergyModel,
    design: DesignPoint,
    profile: WorkloadProfile,
    instructions: u64,
    seed: u64,
    recorder: &Recorder,
) -> SimResult {
    let trace = TraceGenerator::new(profile, params.blocks, seed);
    simulate_ops_traced(
        params,
        energy,
        design,
        trace,
        profile.name,
        instructions,
        profile.mlp,
        recorder,
    )
}

/// Run the simulation over an arbitrary operation stream (e.g. a
/// [`crate::trace_file::FileTrace`]). `mlp` is the core's outstanding-
/// read window for this workload.
pub fn simulate_ops(
    params: &SimParams,
    energy: &EnergyModel,
    design: DesignPoint,
    trace: impl IntoIterator<Item = crate::workload::MemOp>,
    label: impl Into<String>,
    instructions: u64,
    mlp: usize,
) -> SimResult {
    simulate_ops_traced(
        params,
        energy,
        design,
        trace,
        label,
        instructions,
        mlp,
        &Recorder::disabled(),
    )
}

/// [`simulate`] with always-on telemetry: `telemetry` claims its due
/// sample ticks as engine core time advances (and once more at the end
/// of the run), turning the engine's per-bank counters into the same
/// ring-buffered series the functional device exports. Risk transitions
/// emit into `recorder` (pass `Recorder::disabled()` to skip tracing).
/// The returned [`SimResult`] is bit-identical to [`simulate`]'s —
/// telemetry observes the engine, never alters it.
#[allow(clippy::too_many_arguments)]
pub fn simulate_telemetry(
    params: &SimParams,
    energy: &EnergyModel,
    design: DesignPoint,
    profile: WorkloadProfile,
    instructions: u64,
    seed: u64,
    telemetry: &TelemetryRecorder,
    recorder: &Recorder,
) -> SimResult {
    let trace = TraceGenerator::new(profile, params.blocks, seed);
    simulate_ops_inner(
        params,
        energy,
        design,
        trace,
        profile.name,
        instructions,
        profile.mlp,
        recorder,
        Some(telemetry),
    )
}

/// [`simulate_ops`] with tracing: every demand read/write and every
/// refresh emits its modeled timing window into `recorder`, stamped in
/// engine nanoseconds. End-of-run drain refreshes (counted only for
/// energy accounting, with no timing model) are not traced.
#[allow(clippy::too_many_arguments)]
pub fn simulate_ops_traced(
    params: &SimParams,
    energy: &EnergyModel,
    design: DesignPoint,
    trace: impl IntoIterator<Item = crate::workload::MemOp>,
    label: impl Into<String>,
    instructions: u64,
    mlp: usize,
    recorder: &Recorder,
) -> SimResult {
    simulate_ops_inner(
        params,
        energy,
        design,
        trace,
        label,
        instructions,
        mlp,
        recorder,
        None,
    )
}

/// Poll the telemetry recorder at engine time `now_ns` (monotone within
/// a run). Gated on `due_before` so the counter gather only happens
/// when a sample tick will actually be claimed.
fn poll_telemetry(
    telemetry: Option<&TelemetryRecorder>,
    now_ns: f64,
    metrics: &DeviceMetrics,
    recorder: &Recorder,
) {
    let Some(tel) = telemetry else {
        return;
    };
    let t = round_ns(now_ns);
    if tel.due_before(t) {
        tel.sample_up_to(t, &telemetry_counters(metrics), recorder);
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_ops_inner(
    params: &SimParams,
    energy: &EnergyModel,
    design: DesignPoint,
    trace: impl IntoIterator<Item = crate::workload::MemOp>,
    label: impl Into<String>,
    instructions: u64,
    mlp: usize,
    recorder: &Recorder,
    telemetry: Option<&TelemetryRecorder>,
) -> SimResult {
    let mut trace = trace.into_iter();
    let token_period_ns = params.write_window_ns / params.writes_per_window as f64;
    let refresh_period_ns = if design.refreshes() {
        params.refresh_interval_s * 1e9 / params.blocks as f64
    } else {
        f64::INFINITY
    };

    let metrics = DeviceMetrics::new(params.banks);
    let mut bank_free = vec![0.0f64; params.banks];
    let mut token_time = 0.0f64; // next write token grant time
    let mut core_time = 0.0f64;
    let mut last_instr = 0u64;
    let mut next_refresh = refresh_period_ns;
    let mut refresh_bank = 0usize;

    let mut outstanding_reads: VecDeque<f64> = VecDeque::new();
    let mut write_queue: VecDeque<f64> = VecDeque::new();
    let mut latest_finish = 0.0f64;

    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut refreshes = 0u64;

    let ns_per_instr = 1.0 / params.cpu_freq_ghz;
    let ecc_ns = design.ecc_read_adder_ns();
    // Per-workload MLP, capped by the core's outstanding-read limit.
    let read_window = mlp.clamp(1, params.max_outstanding_reads);
    let mut read_latency_sum = 0.0f64;
    let mut read_latency_max = 0.0f64;

    for op in &mut trace {
        if op.at_instruction > instructions {
            break;
        }
        // Core progresses through compute instructions.
        core_time += (op.at_instruction - last_instr) as f64 * ns_per_instr;
        last_instr = op.at_instruction;

        // Apply refresh ops that came due before this op issues.
        while next_refresh <= core_time {
            let grant = token_time.max(next_refresh);
            token_time = grant + token_period_ns;
            if design.refresh_blocks_bank() {
                let start = grant.max(bank_free[refresh_bank]);
                bank_free[refresh_bank] = start + params.block_refresh_ns;
                metrics
                    .bank(refresh_bank)
                    .record_scrub(0, params.block_refresh_ns as u64);
                if recorder.is_enabled() {
                    recorder.span(
                        OpKind::Refresh,
                        refresh_bank as u32,
                        NO_BLOCK,
                        (round_ns(start), round_ns(start + params.block_refresh_ns)),
                        (0, 0),
                    );
                }
            } else if recorder.is_enabled() {
                // REF-OPT: the refresh consumes a write token but never
                // occupies a bank — an instant, not a span.
                recorder.instant(
                    OpKind::Refresh,
                    refresh_bank as u32,
                    NO_BLOCK,
                    round_ns(grant),
                    0,
                );
            }
            refresh_bank = (refresh_bank + 1) % params.banks;
            refreshes += 1;
            next_refresh += refresh_period_ns;
        }

        // Claim telemetry samples that came due as core time advanced
        // (after the refresh catch-up, so boundary scrubs land in the
        // sample that covers them).
        poll_telemetry(telemetry, core_time, &metrics, recorder);

        // Retire completed outstanding operations.
        while outstanding_reads.front().is_some_and(|&f| f <= core_time) {
            outstanding_reads.pop_front();
        }
        while write_queue.front().is_some_and(|&f| f <= core_time) {
            write_queue.pop_front();
        }

        let bank = (op.block as usize) % params.banks;
        if op.is_write {
            // Posted write: token, then bank.
            let grant = token_time.max(core_time);
            token_time = grant + token_period_ns;
            let start = grant.max(bank_free[bank]);
            let finish = start + params.write_latency_ns;
            bank_free[bank] = finish;
            latest_finish = latest_finish.max(finish);
            write_queue.push_back(finish);
            metrics
                .bank(bank)
                .record_write(0, params.write_latency_ns as u64);
            if recorder.is_enabled() {
                recorder.span(
                    OpKind::Write,
                    bank as u32,
                    op.block as u32,
                    (round_ns(start), round_ns(finish)),
                    (0, 0),
                );
            }
            writes += 1;
            if write_queue.len() > params.write_queue_depth {
                // pcm-lint: allow(no-panic-lib) — infallible: guarded by the queue-depth check above
                let oldest = write_queue.pop_front().expect("non-empty");
                core_time = core_time.max(oldest);
            }
        } else {
            let start = core_time.max(bank_free[bank]);
            let finish = start + params.read_latency_ns + ecc_ns;
            bank_free[bank] = start + params.read_latency_ns;
            latest_finish = latest_finish.max(finish);
            let latency = finish - core_time;
            read_latency_sum += latency;
            read_latency_max = read_latency_max.max(latency);
            outstanding_reads.push_back(finish);
            metrics
                .bank(bank)
                .record_read(0, params.read_latency_ns as u64);
            if recorder.is_enabled() {
                let array_done = start + params.read_latency_ns;
                recorder.span(
                    OpKind::Read,
                    bank as u32,
                    op.block as u32,
                    (round_ns(start), round_ns(array_done)),
                    (0, 0),
                );
                if ecc_ns > 0.0 {
                    recorder.span(
                        OpKind::EccDecode,
                        bank as u32,
                        op.block as u32,
                        (round_ns(array_done), round_ns(finish)),
                        (0, 0),
                    );
                }
            }
            reads += 1;
            if outstanding_reads.len() > read_window {
                // pcm-lint: allow(no-panic-lib) — infallible: guarded by the window-length check above
                let oldest = outstanding_reads.pop_front().expect("non-empty");
                core_time = core_time.max(oldest);
            }
        }
    }

    // Drain: the run ends when the core retires its last instruction and
    // every outstanding memory operation completes.
    let mut exec = core_time.max(latest_finish);
    // Refreshes keep firing until the end of the run (energy accounting).
    while next_refresh <= exec {
        refreshes += 1;
        next_refresh += refresh_period_ns;
    }
    exec = exec.max(core_time);
    // Final poll: series cover the whole run through the drain point.
    poll_telemetry(telemetry, exec, &metrics, recorder);

    SimResult {
        design,
        workload: label.into(),
        instructions,
        reads,
        writes,
        refreshes,
        exec_time_ns: exec,
        read_energy_nj: reads as f64 * energy.read_nj,
        write_energy_nj: writes as f64 * energy.write_nj,
        refresh_energy_nj: refreshes as f64 * energy.refresh_nj,
        static_energy_nj: energy.static_w * exec,
        avg_read_latency_ns: if reads > 0 {
            read_latency_sum / reads as f64
        } else {
            0.0
        },
        max_read_latency_ns: read_latency_max,
        scrub_bandwidth_tax: if exec > 0.0 {
            refreshes as f64 * token_period_ns / exec
        } else {
            0.0
        },
        bank_utilization: metrics.snapshot().utilization(exec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(design: DesignPoint, workload: &str) -> SimResult {
        let params = SimParams::default();
        let energy = EnergyModel::default();
        let profile = WorkloadProfile::by_name(workload).expect("known workload");
        simulate(&params, &energy, design, profile, 2_000_000, 42)
    }

    #[test]
    fn deterministic() {
        let a = run(DesignPoint::FourLcRef, "mcf");
        let b = run(DesignPoint::FourLcRef, "mcf");
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        use pcm_device::TelemetryConfig;
        let params = SimParams::default();
        let energy = EnergyModel::default();
        let profile = WorkloadProfile::by_name("mcf").expect("known workload");
        let plain = simulate(
            &params,
            &energy,
            DesignPoint::FourLcRef,
            profile,
            500_000,
            7,
        );
        // Sample every 10 µs of engine time.
        let tel = TelemetryRecorder::new(params.banks, TelemetryConfig::new(10_000));
        let observed = simulate_telemetry(
            &params,
            &energy,
            DesignPoint::FourLcRef,
            profile,
            500_000,
            7,
            &tel,
            &Recorder::disabled(),
        );
        assert_eq!(observed, plain, "telemetry must not alter the run");
        let snap = tel.snapshot();
        assert_eq!(snap.per_bank.len(), params.banks);
        assert!(
            snap.per_bank.iter().any(|b| !b.points.is_empty()),
            "no samples claimed"
        );
        // Refresh traffic shows up as scrub counts in some bank's series.
        let scrubs: u64 = snap
            .per_bank
            .iter()
            .flat_map(|b| b.points.iter().map(|p| p.scrubs))
            .sum();
        assert!(scrubs > 0, "refresh ops never reached the series");
    }

    #[test]
    fn refresh_slows_memory_bound_workloads() {
        // The core §7 result: REF ≥ REF-OPT ≫ NO-REF in execution time.
        // In the write-token-bound regime the REF/REF-OPT gap is small
        // (both pay the refresh bandwidth tax; only bank-blocking of
        // reads differs), exactly as in Figure 16's closely-spaced first
        // two bars.
        for w in ["STREAM", "lbm", "mcf"] {
            let r = run(DesignPoint::FourLcRef, w).exec_time_ns;
            let o = run(DesignPoint::FourLcRefOpt, w).exec_time_ns;
            let n = run(DesignPoint::FourLcNoRef, w).exec_time_ns;
            assert!(r >= o, "{w}: REF {r} vs REF-OPT {o}");
            assert!(o > n * 1.10, "{w}: REF-OPT {o} vs NO-REF {n}");
        }
    }

    #[test]
    fn three_lc_at_least_matches_no_refresh() {
        // 3LC = no refresh + faster ECC: it must be at least as fast as
        // the impossible NO-REF 4LC.
        for w in ["STREAM", "mcf", "libquantum"] {
            let n = run(DesignPoint::FourLcNoRef, w).exec_time_ns;
            let t = run(DesignPoint::ThreeLc, w).exec_time_ns;
            assert!(t <= n * 1.001, "{w}: 3LC {t} vs NO-REF {n}");
        }
    }

    #[test]
    fn namd_is_insensitive() {
        // The compute-bound workload must see < 2% spread across designs.
        let base = run(DesignPoint::FourLcRef, "namd").exec_time_ns;
        for d in DesignPoint::ALL {
            let t = run(d, "namd").exec_time_ns;
            assert!(
                (t - base).abs() / base < 0.02,
                "namd spread: {} vs {base} on {:?}",
                t,
                d
            );
        }
    }

    #[test]
    fn three_lc_saves_energy_on_memory_bound() {
        for w in ["STREAM", "lbm"] {
            let r = run(DesignPoint::FourLcRef, w);
            let t = run(DesignPoint::ThreeLc, w);
            assert!(
                t.total_energy_nj() < 0.9 * r.total_energy_nj(),
                "{w}: 3LC {} vs REF {}",
                t.total_energy_nj(),
                r.total_energy_nj()
            );
            // The savings come from eliminating refresh energy and
            // shortening the run (static energy).
            assert_eq!(t.refresh_energy_nj, 0.0);
        }
    }

    #[test]
    fn refresh_count_matches_rate() {
        let r = run(DesignPoint::FourLcRef, "bzip2");
        let params = SimParams::default();
        let expected = r.exec_time_ns * 1e-9 * params.refresh_ops_per_sec();
        let ratio = r.refreshes as f64 / expected;
        assert!(
            (0.95..1.05).contains(&ratio),
            "refreshes {} vs {expected}",
            r.refreshes
        );
    }

    #[test]
    fn write_bandwidth_is_respected() {
        // Sustained write throughput can never exceed 40 MB/s.
        let r = run(DesignPoint::FourLcNoRef, "STREAM");
        let bytes = r.writes as f64 * 64.0;
        let bw = bytes / (r.exec_time_ns * 1e-9);
        assert!(bw <= 40e6 * 1.01, "write bandwidth {bw}");
    }

    #[test]
    fn power_increases_but_less_than_speedup() {
        // §7: "3LC's performance improvements also imply higher activity
        // factors hence higher power, but the increase ... is much lower
        // compared to the speedup."
        let r = run(DesignPoint::FourLcRef, "STREAM");
        let t = run(DesignPoint::ThreeLc, "STREAM");
        let speedup = r.exec_time_ns / t.exec_time_ns;
        let power_ratio = t.avg_power_w() / r.avg_power_w();
        assert!(speedup > 1.2, "speedup {speedup}");
        assert!(
            power_ratio < speedup,
            "power {power_ratio} vs speedup {speedup}"
        );
    }

    #[test]
    fn file_traces_drive_the_engine() {
        use crate::trace_file::FileTrace;
        let params = SimParams::default();
        let energy = EnergyModel::default();
        // A small hand-written trace: 3 reads, 2 writes over 10k instrs.
        let text = "\
1000 R 0x1000
2000 W 0x2000
4000 R 0x8040
8000 W 0x2000
10000 R 0x1000
";
        let trace = FileTrace::parse(text, params.blocks).unwrap();
        let r = simulate_ops(
            &params,
            &energy,
            DesignPoint::ThreeLc,
            trace.iter(),
            "hand-trace",
            10_000,
            2,
        );
        assert_eq!(r.reads, 3);
        assert_eq!(r.writes, 2);
        assert_eq!(r.workload, "hand-trace");
        // 10k instructions at 3.2 GHz is 3125 ns; plus memory time.
        assert!(r.exec_time_ns >= 3125.0);
        assert!(r.avg_read_latency_ns >= 205.0, "{}", r.avg_read_latency_ns);
        assert!(r.max_read_latency_ns >= r.avg_read_latency_ns);
    }

    #[test]
    fn scrub_tax_matches_analytic_share() {
        // §4.1: refresh eats ~42% of write tokens at the default
        // geometry. The measured tax is refreshes × token period over
        // the run, so it converges on `refresh_write_share`.
        let share = SimParams::default().refresh_write_share();
        for d in [DesignPoint::FourLcRef, DesignPoint::FourLcRefOpt] {
            let tax = run(d, "mcf").scrub_bandwidth_tax;
            assert!((tax / share - 1.0).abs() < 0.05, "{d:?}: {tax} vs {share}");
        }
        assert_eq!(
            run(DesignPoint::FourLcNoRef, "mcf").scrub_bandwidth_tax,
            0.0
        );
        assert_eq!(run(DesignPoint::ThreeLc, "mcf").scrub_bandwidth_tax, 0.0);
    }

    #[test]
    fn bank_utilization_is_per_bank_and_bounded() {
        let r = run(DesignPoint::FourLcRef, "STREAM");
        assert_eq!(r.bank_utilization.len(), SimParams::default().banks);
        assert!(r.bank_utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
        assert!(r.bank_utilization.iter().any(|&u| u > 0.0));
        // Bank-blocking refresh shows up in busy time; the OPT
        // idealization's scrubs never occupy a bank.
        let o = run(DesignPoint::FourLcRefOpt, "STREAM");
        let sum_r: f64 = r.bank_utilization.iter().sum();
        let sum_o: f64 = o.bank_utilization.iter().sum();
        assert!(sum_r > sum_o, "REF {sum_r} vs REF-OPT {sum_o}");
    }

    #[test]
    fn read_latency_reflects_ecc_adder() {
        // Compare the two refresh-free designs on the uncontended
        // workload: the only difference is the ECC adder, 36.25 − 5 =
        // 31.25 ns. (4LC-REF would also show refresh bank-blocking in its
        // read latency — measured separately below.)
        let four = run(DesignPoint::FourLcNoRef, "namd");
        let three = run(DesignPoint::ThreeLc, "namd");
        let delta = four.avg_read_latency_ns - three.avg_read_latency_ns;
        assert!((delta - 31.25).abs() < 5.0, "delta {delta}");
        // And with refresh blocking banks, 4LC-REF's reads wait longer
        // than 4LC-NO-REF's.
        let refreshed = run(DesignPoint::FourLcRef, "namd");
        assert!(
            refreshed.avg_read_latency_ns > four.avg_read_latency_ns + 5.0,
            "refresh bank-blocking must show in read latency: {} vs {}",
            refreshed.avg_read_latency_ns,
            four.avg_read_latency_ns
        );
    }
}
