//! Synthetic workload traces standing in for the paper's SPEC CPU 2006 +
//! STREAM binaries (the McSim substitution — DESIGN.md §3).
//!
//! Figure 16's effect is produced by how much memory traffic a workload
//! pushes into the bandwidth-limited PCM and how much of it is writes;
//! each profile captures a benchmark's published memory character:
//!
//! | workload   | class                         | MPKI | write share |
//! |------------|-------------------------------|------|-------------|
//! | STREAM     | streaming, write-heavy, MLP 8 | high | ~0.45       |
//! | bzip2      | moderate, bursty, MLP 2       | low  | ~0.15       |
//! | mcf        | pointer-chasing, MLP 1        | mid  | ~0.14       |
//! | namd       | compute-bound                 | ~0.2 | ~0.25       |
//! | libquantum | streaming reads, MLP 2        | mid  | ~0.10       |
//! | lbm        | stencil, write-heavy, MLP 8   | high | ~0.50       |
//!
//! MPKI values are LLC-miss (PCM-visible) rates. The load-bearing
//! property is each workload's write demand relative to Table 5's 40 MB/s
//! write budget (625k tokens/s, 364k/s net of refresh): namd sits below
//! it (insensitive to refresh), everything else above it (throttled), and
//! the read/compute share sets how much of the slowdown refresh can cause
//! — which is what differentiates the Figure 16 bars.
//!
//! Traces are generated lazily and deterministically from a seed:
//! geometric inter-arrival gaps (in instructions), Bernoulli write flags,
//! and a bank-access pattern that is sequential for streaming codes and
//! uniform-random for irregular ones.

use pcm_core::rng::Xoshiro256pp;

/// How a workload walks memory blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Unit-stride streaming (successive blocks → banks interleave).
    Sequential,
    /// Uniform random block addresses (pointer chasing).
    Random,
}

/// A synthetic workload profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as used in Figure 16.
    pub name: &'static str,
    /// Memory accesses (PCM block transfers) per thousand instructions.
    pub mpki: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Block-address pattern.
    pub pattern: AccessPattern,
    /// Memory-level parallelism: reads the core keeps outstanding before
    /// stalling (1 = pointer chasing, 8 = streaming prefetch-friendly).
    pub mlp: usize,
}

impl WorkloadProfile {
    /// The six Figure 16 workloads, in the figure's order.
    pub fn figure16_suite() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile {
                name: "STREAM",
                mpki: 30.0,
                write_fraction: 0.45,
                pattern: AccessPattern::Sequential,
                mlp: 8,
            },
            WorkloadProfile {
                name: "bzip2",
                mpki: 1.5,
                write_fraction: 0.15,
                pattern: AccessPattern::Random,
                mlp: 2,
            },
            WorkloadProfile {
                name: "mcf",
                mpki: 4.0,
                write_fraction: 0.14,
                pattern: AccessPattern::Random,
                mlp: 1,
            },
            WorkloadProfile {
                name: "namd",
                mpki: 0.2,
                write_fraction: 0.25,
                pattern: AccessPattern::Random,
                mlp: 2,
            },
            WorkloadProfile {
                name: "libquantum",
                mpki: 3.2,
                write_fraction: 0.10,
                pattern: AccessPattern::Sequential,
                mlp: 2,
            },
            WorkloadProfile {
                name: "lbm",
                mpki: 25.0,
                write_fraction: 0.50,
                pattern: AccessPattern::Sequential,
                mlp: 8,
            },
        ]
    }

    /// Look a profile up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        Self::figure16_suite()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

/// One memory operation of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Instruction count at which the op issues.
    pub at_instruction: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Target block index.
    pub block: u64,
}

/// Lazy deterministic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    blocks: u64,
    rng: Xoshiro256pp,
    instruction: u64,
    cursor: u64,
}

impl TraceGenerator {
    /// Trace for `profile` over a device of `blocks` blocks.
    pub fn new(profile: WorkloadProfile, blocks: u64, seed: u64) -> Self {
        // pcm-lint: allow(no-panic-lib) — config contract: a workload needs at least one block
        assert!(blocks >= 1);
        // pcm-lint: allow(no-panic-lib) — config contract: MPKI and write fraction come from the paper's workload table
        assert!(profile.mpki > 0.0 && (0.0..=1.0).contains(&profile.write_fraction));
        Self {
            profile,
            blocks,
            // pcm-lint: allow(no-ambient-nondeterminism) — deterministic stream: the seed is caller-provided, per the documented reproducibility contract
            rng: Xoshiro256pp::seed_from_u64(seed),
            instruction: 0,
            cursor: 0,
        }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl Iterator for TraceGenerator {
    type Item = MemOp;

    fn next(&mut self) -> Option<MemOp> {
        // Geometric gap with mean 1000 / MPKI instructions.
        let mean_gap = 1000.0 / self.profile.mpki;
        let u = self.rng.next_f64_open();
        let gap = (-u.ln() * mean_gap).ceil() as u64;
        self.instruction = self.instruction.saturating_add(gap.max(1));
        let is_write = self.rng.next_f64() < self.profile.write_fraction;
        let block = match self.profile.pattern {
            AccessPattern::Sequential => {
                self.cursor = (self.cursor + 1) % self.blocks;
                self.cursor
            }
            AccessPattern::Random => self.rng.next_bounded(self.blocks),
        };
        Some(MemOp {
            at_instruction: self.instruction,
            is_write,
            block,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_workloads() {
        let suite = WorkloadProfile::figure16_suite();
        assert_eq!(suite.len(), 6);
        assert!(WorkloadProfile::by_name("stream").is_some());
        assert!(WorkloadProfile::by_name("nope").is_none());
    }

    #[test]
    fn trace_is_deterministic() {
        let p = WorkloadProfile::by_name("mcf").unwrap();
        let a: Vec<MemOp> = TraceGenerator::new(p, 1024, 7).take(1000).collect();
        let b: Vec<MemOp> = TraceGenerator::new(p, 1024, 7).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mpki_is_respected() {
        let p = WorkloadProfile::by_name("STREAM").unwrap();
        let ops: Vec<MemOp> = TraceGenerator::new(p, 4096, 1).take(50_000).collect();
        let instrs = ops.last().unwrap().at_instruction as f64;
        let mpki = ops.len() as f64 / instrs * 1000.0;
        assert!((mpki - 30.0).abs() < 2.0, "measured MPKI {mpki}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = WorkloadProfile::by_name("lbm").unwrap();
        let ops: Vec<MemOp> = TraceGenerator::new(p, 4096, 2).take(50_000).collect();
        let wf = ops.iter().filter(|o| o.is_write).count() as f64 / ops.len() as f64;
        assert!((wf - 0.5).abs() < 0.01, "write fraction {wf}");
    }

    #[test]
    fn sequential_pattern_interleaves_banks() {
        let p = WorkloadProfile::by_name("libquantum").unwrap();
        let ops: Vec<MemOp> = TraceGenerator::new(p, 64, 3).take(100).collect();
        for w in ops.windows(2) {
            assert_eq!((w[0].block + 1) % 64, w[1].block);
        }
    }

    #[test]
    fn random_pattern_covers_blocks() {
        let p = WorkloadProfile::by_name("mcf").unwrap();
        let ops: Vec<MemOp> = TraceGenerator::new(p, 16, 4).take(10_000).collect();
        let mut seen = [false; 16];
        for o in &ops {
            seen[o.block as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn instructions_strictly_increase() {
        let p = WorkloadProfile::by_name("namd").unwrap();
        let ops: Vec<MemOp> = TraceGenerator::new(p, 128, 5).take(1000).collect();
        for w in ops.windows(2) {
            assert!(w[1].at_instruction > w[0].at_instruction);
        }
    }
}
