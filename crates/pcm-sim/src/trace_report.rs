//! Offline analysis of JSONL trace files: the model behind
//! `cargo run -p xtask -- trace-report`.
//!
//! Consumes the format written by [`pcm_trace::jsonl::export`] and
//! summarizes it: per-bank operation counts, span-duration log2
//! histograms (reusing [`LogHistogram`] so the buckets line up with the
//! metrics registry's), scrub/demand interleave statistics, and a
//! top-N longest-spans table. Everything here is a pure function of the
//! input text, so reports are byte-stable for a given trace.

use pcm_device::LogHistogram;
use pcm_trace::{jsonl, OpKind, Phase, TraceDecodeError, TraceEvent};

/// One completed span reconstructed from a Begin/End pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Operation kind.
    pub kind: OpKind,
    /// Bank the span ran on.
    pub bank: u32,
    /// Block, or [`pcm_trace::NO_BLOCK`] for whole-bank activity.
    pub block: u32,
    /// Span start, model-time ns.
    pub start_ns: u64,
    /// Span duration, ns.
    pub duration_ns: u64,
}

/// Per-bank activity summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankActivity {
    /// Bank id.
    pub bank: u32,
    /// Completed operations per kind, indexed like [`OpKind::ALL`]
    /// (spans count on their End event, instants on their Instant).
    pub counts: [u64; OpKind::ALL.len()],
    /// Events ever recorded into this bank's lane (including ones the
    /// ring has since overwritten).
    pub recorded: u64,
    /// Events overwritten before the snapshot was taken.
    pub dropped: u64,
    /// Demand↔scrub alternations along the bank's canonical event
    /// order: +1 every time a completed demand op (read/write) directly
    /// follows a completed scrub op (refresh) or vice versa.
    pub transitions: u64,
    /// Demand spans whose busy window overlaps a refresh span on the
    /// same bank — the §4.1 interference made visible per bank.
    pub refresh_overlaps: u64,
}

/// Duration distribution for one span kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindHistogram {
    /// Span kind.
    pub kind: OpKind,
    /// Completed spans measured.
    pub count: u64,
    /// Bucket floor of the median duration, ns.
    pub p50_ns: u64,
    /// Bucket floor of the 95th-percentile duration, ns.
    pub p95_ns: u64,
    /// Bucket floor of the 99th-percentile duration, ns.
    pub p99_ns: u64,
    /// Longest observed duration, ns.
    pub max_ns: u64,
}

/// Everything `trace-report` prints, as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Banks in the traced device.
    pub banks: usize,
    /// Ring capacity per bank, events.
    pub capacity: usize,
    /// Events present in the snapshot.
    pub total_events: usize,
    /// Events ever recorded (sum over lanes, pre-overwrite).
    pub total_recorded: u64,
    /// Events lost to ring overwrite.
    pub total_dropped: u64,
    /// Begin events with no matching End (or Ends with no Begin) —
    /// nonzero when the ring overwrote half of a pair.
    pub unmatched_spans: u64,
    /// Per-bank summaries, bank order.
    pub per_bank: Vec<BankActivity>,
    /// Span-duration histograms, one per kind that completed a span.
    pub histograms: Vec<KindHistogram>,
    /// The longest spans in the trace, longest first.
    pub top_spans: Vec<SpanRecord>,
}

/// Analyze a JSONL trace document with the default top-10 span table.
pub fn analyze(doc: &str) -> Result<TraceReport, TraceDecodeError> {
    analyze_top(doc, 10)
}

/// [`analyze`] with an explicit size for the longest-spans table.
pub fn analyze_top(doc: &str, top_n: usize) -> Result<TraceReport, TraceDecodeError> {
    let parsed = jsonl::parse(doc)?;
    let mut per_bank: Vec<BankActivity> = (0..parsed.banks as u32)
        .map(|bank| BankActivity {
            bank,
            counts: [0; OpKind::ALL.len()],
            recorded: 0,
            dropped: 0,
            transitions: 0,
            refresh_overlaps: 0,
        })
        .collect();
    for lane in &parsed.lanes {
        if let Some(slot) = per_bank.get_mut(lane.bank) {
            slot.recorded = lane.recorded;
            slot.dropped = lane.dropped;
        }
    }

    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut unmatched = 0u64;
    // Per-(bank, kind) FIFO of open Begin events. Events arrive in
    // canonical per-bank order, and both halves of a span are recorded
    // back to back, so FIFO matching is exact.
    let mut open: Vec<Vec<(u64, u32)>> = vec![Vec::new(); parsed.banks * OpKind::ALL.len()];
    // -1 = unknown, 0 = demand, 1 = scrub; per bank.
    let mut last_class: Vec<i8> = vec![-1; parsed.banks];

    for ev in &parsed.events {
        let bank = ev.bank as usize;
        if bank >= parsed.banks {
            continue; // defensively skip records for unknown banks
        }
        let kind_ix = kind_index(ev.kind);
        match ev.phase {
            Phase::Begin => {
                if let Some(stack) = open.get_mut(bank * OpKind::ALL.len() + kind_ix) {
                    stack.push((ev.t_ns, ev.block));
                }
            }
            Phase::End => {
                complete(&mut per_bank, &mut last_class, ev, &mut unmatched);
                if let Some(stack) = open.get_mut(bank * OpKind::ALL.len() + kind_ix) {
                    if stack.is_empty() {
                        unmatched += 1;
                    } else {
                        let (start, block) = stack.remove(0);
                        spans.push(SpanRecord {
                            kind: ev.kind,
                            bank: ev.bank,
                            block,
                            start_ns: start,
                            duration_ns: ev.t_ns.saturating_sub(start),
                        });
                    }
                }
            }
            Phase::Instant => complete(&mut per_bank, &mut last_class, ev, &mut unmatched),
        }
    }
    unmatched += open.iter().map(|s| s.len() as u64).sum::<u64>();

    for slot in per_bank.iter_mut() {
        slot.refresh_overlaps = refresh_overlaps(&spans, slot.bank);
    }

    let histograms = build_histograms(&spans);

    // Longest first; ties broken by (bank, start) so the table is stable.
    spans.sort_by(|a, b| {
        b.duration_ns
            .cmp(&a.duration_ns)
            .then(a.bank.cmp(&b.bank))
            .then(a.start_ns.cmp(&b.start_ns))
    });
    spans.truncate(top_n);

    Ok(TraceReport {
        banks: parsed.banks,
        capacity: parsed.capacity,
        total_events: parsed.events.len(),
        total_recorded: parsed.lanes.iter().map(|l| l.recorded).sum(),
        total_dropped: parsed.lanes.iter().map(|l| l.dropped).sum(),
        unmatched_spans: unmatched,
        per_bank,
        histograms,
        top_spans: spans,
    })
}

fn kind_index(kind: OpKind) -> usize {
    OpKind::ALL.iter().position(|&k| k == kind).unwrap_or(0)
}

/// Count a completed op (span End or instant) and advance the bank's
/// demand/scrub interleave state machine.
fn complete(per_bank: &mut [BankActivity], last_class: &mut [i8], ev: &TraceEvent, _u: &mut u64) {
    let bank = ev.bank as usize;
    if let Some(slot) = per_bank.get_mut(bank) {
        slot.counts[kind_index(ev.kind)] += 1;
        let class: i8 = match ev.kind {
            OpKind::Read | OpKind::Write => 0,
            OpKind::Refresh => 1,
            _ => return,
        };
        if let Some(prev) = last_class.get_mut(bank) {
            if *prev >= 0 && *prev != class {
                slot.transitions += 1;
            }
            *prev = class;
        }
    }
}

/// Demand (read/write) spans on `bank` overlapping at least one refresh
/// span on the same bank, by a two-pointer sweep over start-sorted
/// interval lists.
fn refresh_overlaps(spans: &[SpanRecord], bank: u32) -> u64 {
    let mut demand: Vec<(u64, u64)> = Vec::new();
    let mut refresh: Vec<(u64, u64)> = Vec::new();
    for s in spans {
        if s.bank != bank {
            continue;
        }
        let iv = (s.start_ns, s.start_ns + s.duration_ns);
        match s.kind {
            OpKind::Read | OpKind::Write => demand.push(iv),
            OpKind::Refresh => refresh.push(iv),
            _ => {}
        }
    }
    demand.sort_unstable();
    refresh.sort_unstable();
    let mut hits = 0u64;
    let mut j = 0usize;
    for &(ds, de) in &demand {
        // Skip refresh spans that end at or before this demand start
        // (half-open intervals: touching endpoints do not overlap).
        while j < refresh.len() && refresh[j].1 <= ds {
            j += 1;
        }
        if refresh.get(j).is_some_and(|&(rs, _)| rs < de) {
            hits += 1;
        }
    }
    hits
}

fn build_histograms(spans: &[SpanRecord]) -> Vec<KindHistogram> {
    OpKind::ALL
        .iter()
        .filter_map(|&kind| {
            let h = LogHistogram::new();
            let mut count = 0u64;
            let mut max_ns = 0u64;
            for s in spans.iter().filter(|s| s.kind == kind) {
                h.record(s.duration_ns);
                count += 1;
                max_ns = max_ns.max(s.duration_ns);
            }
            (count > 0).then(|| KindHistogram {
                kind,
                count,
                p50_ns: h.quantile_floor(0.50),
                p95_ns: h.quantile_floor(0.95),
                p99_ns: h.quantile_floor(0.99),
                max_ns,
            })
        })
        .collect()
}

impl TraceReport {
    /// Human-readable rendering (what `trace-report` prints by default).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events in snapshot ({} recorded, {} dropped), \
             {} banks, ring capacity {}/bank\n",
            self.total_events, self.total_recorded, self.total_dropped, self.banks, self.capacity
        ));
        // One column per OpKind, sized to the kind name, so new trace
        // vocabulary (e.g. the kv_* store ops) shows up without touching
        // this table.
        out.push_str(&format!("{:>4}", "bank"));
        for kind in OpKind::ALL {
            out.push_str(&format!(
                " {:>w$}",
                kind.name(),
                w = kind.name().len().max(6)
            ));
        }
        out.push_str(&format!(
            " {:>8} {:>12} {:>16}\n",
            "dropped", "transitions", "refresh_overlaps"
        ));
        for b in &self.per_bank {
            out.push_str(&format!("{:>4}", b.bank));
            for kind in OpKind::ALL {
                out.push_str(&format!(
                    " {:>w$}",
                    b.counts[kind_index(kind)],
                    w = kind.name().len().max(6)
                ));
            }
            out.push_str(&format!(
                " {:>8} {:>12} {:>16}\n",
                b.dropped, b.transitions, b.refresh_overlaps
            ));
        }
        out.push_str("span durations (ns):\n");
        out.push_str(&format!(
            "{:>12} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            "kind", "count", "p50", "p95", "p99", "max"
        ));
        for h in &self.histograms {
            out.push_str(&format!(
                "{:>12} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                h.kind.name(),
                h.count,
                h.p50_ns,
                h.p95_ns,
                h.p99_ns,
                h.max_ns
            ));
        }
        out.push_str(&format!("top {} longest spans:\n", self.top_spans.len()));
        out.push_str(&format!(
            "{:>3} {:>12} {:>4} {:>10} {:>14} {:>12}\n",
            "#", "kind", "bank", "block", "start_ns", "duration_ns"
        ));
        for (i, s) in self.top_spans.iter().enumerate() {
            let block = if s.block == pcm_trace::NO_BLOCK {
                "-".to_string()
            } else {
                s.block.to_string()
            };
            out.push_str(&format!(
                "{:>3} {:>12} {:>4} {:>10} {:>14} {:>12}\n",
                i + 1,
                s.kind.name(),
                s.bank,
                block,
                s.start_ns,
                s.duration_ns
            ));
        }
        if self.unmatched_spans > 0 {
            out.push_str(&format!(
                "warning: {} unmatched span halves (ring overwrite split begin/end pairs)\n",
                self.unmatched_spans
            ));
        }
        out
    }

    /// The report as one JSON object with a fixed field order (no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let banks: Vec<String> = self
            .per_bank
            .iter()
            .map(|b| {
                let counts: Vec<String> = OpKind::ALL
                    .iter()
                    .map(|&k| format!("\"{}\":{}", k.name(), b.counts[kind_index(k)]))
                    .collect();
                format!(
                    "{{\"bank\":{},\"counts\":{{{}}},\"recorded\":{},\"dropped\":{},\
                     \"transitions\":{},\"refresh_overlaps\":{}}}",
                    b.bank,
                    counts.join(","),
                    b.recorded,
                    b.dropped,
                    b.transitions,
                    b.refresh_overlaps
                )
            })
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "{{\"kind\":\"{}\",\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\
                     \"p99_ns\":{},\"max_ns\":{}}}",
                    h.kind.name(),
                    h.count,
                    h.p50_ns,
                    h.p95_ns,
                    h.p99_ns,
                    h.max_ns
                )
            })
            .collect();
        let tops: Vec<String> = self
            .top_spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"kind\":\"{}\",\"bank\":{},\"block\":{},\"start_ns\":{},\
                     \"duration_ns\":{}}}",
                    s.kind.name(),
                    s.bank,
                    s.block,
                    s.start_ns,
                    s.duration_ns
                )
            })
            .collect();
        format!(
            "{{\"banks\":{},\"capacity\":{},\"total_events\":{},\"total_recorded\":{},\
             \"total_dropped\":{},\"unmatched_spans\":{},\"per_bank\":[{}],\
             \"histograms\":[{}],\"top_spans\":[{}]}}",
            self.banks,
            self.capacity,
            self.total_events,
            self.total_recorded,
            self.total_dropped,
            self.unmatched_spans,
            banks.join(","),
            hists.join(","),
            tops.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_trace::{jsonl, Recorder, TraceConfig};

    fn sample_doc() -> String {
        let rec = Recorder::buffered(2, &TraceConfig::new(64));
        // Bank 0: read, refresh (overlapping the read), write.
        rec.span(OpKind::Read, 0, 3, (100, 300), (0, 0));
        rec.span(OpKind::Refresh, 0, 3, (200, 1400), (0, 0));
        rec.span(OpKind::Write, 0, 4, (1500, 2500), (1, 0));
        // Bank 1: a failure instant and a scrub pass.
        rec.instant(OpKind::Failure, 1, 7, 50, 2);
        rec.span(OpKind::ScrubPass, 1, pcm_trace::NO_BLOCK, (0, 5000), (1, 4));
        let buf = rec.buffer().expect("buffered");
        jsonl::export(&buf.snapshot())
    }

    #[test]
    fn analyze_counts_and_spans() {
        let report = analyze(&sample_doc()).unwrap();
        assert_eq!(report.banks, 2);
        assert_eq!(report.total_events, 9);
        assert_eq!(report.total_dropped, 0);
        assert_eq!(report.unmatched_spans, 0);
        let b0 = &report.per_bank[0];
        assert_eq!(b0.counts[kind_index(OpKind::Read)], 1);
        assert_eq!(b0.counts[kind_index(OpKind::Write)], 1);
        assert_eq!(b0.counts[kind_index(OpKind::Refresh)], 1);
        // read → refresh → write alternates twice.
        assert_eq!(b0.transitions, 2);
        // The read at [100,300) overlaps the refresh at [200,1400); the
        // write at [1500,2500) does not.
        assert_eq!(b0.refresh_overlaps, 1);
        let b1 = &report.per_bank[1];
        assert_eq!(b1.counts[kind_index(OpKind::Failure)], 1);
        assert_eq!(b1.counts[kind_index(OpKind::ScrubPass)], 1);
        // Longest span is the 5000 ns scrub pass.
        assert_eq!(report.top_spans[0].kind, OpKind::ScrubPass);
        assert_eq!(report.top_spans[0].duration_ns, 5000);
    }

    #[test]
    fn histograms_reuse_log2_buckets() {
        let report = analyze(&sample_doc()).unwrap();
        let read = report
            .histograms
            .iter()
            .find(|h| h.kind == OpKind::Read)
            .unwrap();
        assert_eq!(read.count, 1);
        // A 200 ns read lands in the [128, 256) bucket.
        assert_eq!(read.p50_ns, 128);
        assert_eq!(read.max_ns, 200);
    }

    #[test]
    fn renderings_are_deterministic() {
        let doc = sample_doc();
        let a = analyze(&doc).unwrap();
        let b = analyze(&doc).unwrap();
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.render_text().contains("scrub_pass"));
        assert!(a.to_json().starts_with("{\"banks\":2,"));
    }

    #[test]
    fn unmatched_halves_are_reported_not_dropped_silently() {
        // A tiny ring (capacity 2) on one bank: record two spans; the
        // oldest half-pair is overwritten, splitting a begin from its
        // end.
        let rec = Recorder::buffered(1, &TraceConfig::new(2));
        rec.span(OpKind::Read, 0, 0, (0, 10), (0, 0));
        rec.span(OpKind::Write, 0, 1, (20, 40), (0, 0));
        let doc = jsonl::export(&rec.buffer().unwrap().snapshot());
        let report = analyze(&doc).unwrap();
        assert_eq!(report.total_dropped, 2);
        assert_eq!(report.total_events, 2);
        assert_eq!(report.unmatched_spans, 0, "write pair survives intact");
        assert_eq!(report.top_spans.len(), 1);
        assert_eq!(report.top_spans[0].kind, OpKind::Write);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(analyze("not json\n").is_err());
    }
}
