//! Causal request profiling: per-request latency attribution over a
//! JSONL trace (the model behind `cargo run -p xtask -- profile-report`).
//!
//! The trace layer stamps every event with a correlation id (`ctx`, see
//! `pcm_trace::ctx`): a top-level request — a `kv_get`/`kv_put`/
//! `kv_delete`, a demand `read`/`write`/`refresh`, or a whole scrub
//! pass — allocates one id, and every child event it causes (device
//! reads and writes, nested `ecc_decode` work, `scrub_stall` drains)
//! carries that id, with directory/allocator traffic additionally
//! marked by the ctx index flag. This module groups a trace by id base
//! and splits each request's duration into named latency buckets:
//!
//! * **media** — unflagged device busy windows (value data traffic);
//! * **ecc_decode** — BCH decode work carved out of read windows;
//! * **alloc_index** — index-flagged busy windows (directory walks,
//!   free-list and superblock traffic);
//! * **scrub_wait** — accumulated scrub debt the request drained;
//! * **queue_wait** — the remainder of the request's span not covered
//!   by any child (scheduling slack; exactly 0 for KV requests, whose
//!   spans are defined as the sum of their children);
//! * **overrun** — child time exceeding the request span (0 on a
//!   well-formed trace; nonzero flags ring overwrite or a model bug).
//!
//! Buckets are integer nanoseconds and sum to `duration_ns` exactly
//! (`queue_wait` absorbs slack, `overrun` absorbs excess), so the
//! attribution is residual-free by construction — the property the
//! `profile_determinism` oracle asserts. Everything here is a pure
//! function of the input text: reports, folded stacks, and JSONL
//! exports are byte-stable for a given trace.

use pcm_trace::{ctx_base, ctx_is_index, jsonl, OpKind, Phase, TraceDecodeError, NO_CTX};
use std::collections::BTreeMap;

/// Where a request's time went, integer ns. Invariant: the six buckets
/// sum to the request's `duration_ns` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBuckets {
    /// Unflagged device busy time (value/data media windows).
    pub media_ns: u64,
    /// ECC decode work (carved out of the read windows it overlaps).
    pub ecc_ns: u64,
    /// Index-flagged device busy time (directory + allocator traffic).
    pub alloc_index_ns: u64,
    /// Scrub debt drained ahead of the request's device ops.
    pub scrub_wait_ns: u64,
    /// Request-span time not covered by any child span.
    pub queue_wait_ns: u64,
    /// Child time beyond the request span (0 on a well-formed trace).
    pub overrun_ns: u64,
}

impl LatencyBuckets {
    /// Sum of all buckets (equals the request duration plus overrun).
    pub fn total_ns(&self) -> u64 {
        self.media_ns
            + self.ecc_ns
            + self.alloc_index_ns
            + self.scrub_wait_ns
            + self.queue_wait_ns
            + self.overrun_ns
    }

    /// `(name, value)` pairs in canonical order (folded-stack names).
    pub fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("media", self.media_ns),
            ("ecc_decode", self.ecc_ns),
            ("alloc_index", self.alloc_index_ns),
            ("scrub_wait", self.scrub_wait_ns),
            ("queue_wait", self.queue_wait_ns),
            ("overrun", self.overrun_ns),
        ]
    }
}

/// One child event attributed to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildSpan {
    /// Child kind.
    pub kind: OpKind,
    /// Bank the child ran on.
    pub bank: u32,
    /// Block, or [`pcm_trace::NO_BLOCK`].
    pub block: u32,
    /// Start, model ns.
    pub start_ns: u64,
    /// Duration, ns (0 for instants).
    pub duration_ns: u64,
    /// Whether the child's ctx carried the index flag.
    pub index: bool,
}

/// One reconstructed request with its attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestProfile {
    /// The request's base correlation id (index flag cleared).
    pub ctx: u64,
    /// Root kind (`kv_*`, `read`, `write`, `refresh`, or `scrub_pass`).
    pub kind: OpKind,
    /// Bank the root span was recorded on.
    pub bank: u32,
    /// Block of the root span (directory page for KV ops).
    pub block: u32,
    /// Request start, model ns.
    pub start_ns: u64,
    /// Request duration, ns. For demand roots this includes the
    /// `scrub_stall` served at issue, so buckets always sum to it.
    pub duration_ns: u64,
    /// The six-way latency split (sums to `duration_ns` + overrun... no:
    /// media+ecc+index+scrub+queue = duration, overrun is the excess).
    pub buckets: LatencyBuckets,
    /// Child spans attributed to this request (persisted as a count).
    pub child_spans: u64,
    /// The children themselves (empty after [`parse`] — only [`build`]
    /// reconstructs them from the raw trace).
    pub children: Vec<ChildSpan>,
}

/// A whole trace's causal profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Banks in the traced device.
    pub banks: usize,
    /// Requests, sorted by ctx (class, stream, then sequence).
    pub requests: Vec<RequestProfile>,
    /// Span halves with no partner, plus ctx-carrying spans whose root
    /// never appeared (ring overwrite splits both ways).
    pub orphan_events: u64,
    /// Events recorded without a correlation id.
    pub unattributed_events: u64,
}

/// One span reconstructed from a Begin/End pair, ctx attached.
#[derive(Debug, Clone, Copy)]
struct CtxSpan {
    kind: OpKind,
    bank: u32,
    block: u32,
    start_ns: u64,
    duration_ns: u64,
    ctx: u64,
}

/// Root precedence: a group's request span is its highest-ranked
/// member. KV ops sit above the device ops they issue; a scrub pass
/// sits above its refreshes; a bare demand op is its own root.
fn root_rank(kind: OpKind) -> u8 {
    match kind {
        OpKind::KvGet | OpKind::KvPut | OpKind::KvDelete => 3,
        OpKind::ScrubPass => 2,
        OpKind::Read | OpKind::Write | OpKind::Refresh => 1,
        _ => 0,
    }
}

/// Build the causal profile of a JSONL trace document.
pub fn build(doc: &str) -> Result<Profile, TraceDecodeError> {
    let parsed = jsonl::parse(doc)?;
    let mut spans: Vec<CtxSpan> = Vec::new();
    let mut orphans = 0u64;
    let mut unattributed = 0u64;
    // Per-(bank, kind) sets of open Begin events. Both halves of a span
    // carry the same ctx and block, so an End is matched to the oldest
    // open Begin with its (ctx, block) — concurrent sessions interleave
    // freely in model time, which makes blind FIFO pairing swap
    // durations between requests (totals conserved, attribution wrong).
    let mut open: Vec<Vec<(u64, u32, u64)>> = vec![Vec::new(); parsed.banks * OpKind::ALL.len()];
    for ev in &parsed.events {
        if ev.ctx == NO_CTX {
            unattributed += 1;
        }
        let bank = ev.bank as usize;
        if bank >= parsed.banks {
            continue;
        }
        let kind_ix = kind_index(ev.kind);
        let lane = bank * OpKind::ALL.len() + kind_ix;
        match ev.phase {
            Phase::Begin => open[lane].push((ev.t_ns, ev.block, ev.ctx)),
            Phase::End => {
                let at = open[lane]
                    .iter()
                    .position(|&(_, b, c)| b == ev.block && c == ev.ctx);
                match at {
                    None => orphans += 1,
                    Some(i) => {
                        let (start, block, ctx) = open[lane].remove(i);
                        spans.push(CtxSpan {
                            kind: ev.kind,
                            bank: ev.bank,
                            block,
                            start_ns: start,
                            duration_ns: ev.t_ns.saturating_sub(start),
                            ctx,
                        });
                    }
                }
            }
            // Instants join their request as zero-duration children.
            Phase::Instant => spans.push(CtxSpan {
                kind: ev.kind,
                bank: ev.bank,
                block: ev.block,
                start_ns: ev.t_ns,
                duration_ns: 0,
                ctx: ev.ctx,
            }),
        }
    }
    orphans += open.iter().map(|s| s.len() as u64).sum::<u64>();

    // Group attributed spans by base id. BTreeMap gives the canonical
    // (class, stream, seq) request order for free.
    let mut groups: BTreeMap<u64, Vec<CtxSpan>> = BTreeMap::new();
    for s in spans {
        if s.ctx != NO_CTX {
            groups.entry(ctx_base(s.ctx)).or_default().push(s);
        }
    }

    let mut requests = Vec::with_capacity(groups.len());
    for (base, mut members) in groups {
        // Stable member order: by start, then kind code, then block, so
        // the profile is invariant to per-bank lane interleaving.
        members.sort_by_key(|s| (s.start_ns, kind_index(s.kind), s.bank, s.block));
        let root_at = members
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (root_rank(s.kind), usize::MAX - i))
            .map(|(i, _)| i);
        let root = match root_at {
            Some(i) if root_rank(members[i].kind) > 0 => members.remove(i),
            _ => {
                // A rootless group: its request span was lost (ring
                // overwrite) — count the strays rather than inventing
                // a request for them.
                orphans += members.len() as u64;
                continue;
            }
        };
        requests.push(attribute(base, root, members));
    }

    Ok(Profile {
        banks: parsed.banks,
        requests,
        orphan_events: orphans,
        unattributed_events: unattributed,
    })
}

/// Fold one request's children into its latency buckets.
fn attribute(base: u64, root: CtxSpan, members: Vec<CtxSpan>) -> RequestProfile {
    let mut media = 0u64;
    let mut ecc = 0u64;
    let mut ecc_media = 0u64; // decode time nested in unflagged reads
    let mut ecc_index = 0u64; // decode time nested in flagged reads
    let mut index = 0u64;
    let mut scrub = 0u64;
    let mut children = Vec::with_capacity(members.len());
    for s in &members {
        let flagged = ctx_is_index(s.ctx);
        match s.kind {
            OpKind::Read | OpKind::Write | OpKind::Refresh => {
                if flagged {
                    index += s.duration_ns;
                } else {
                    media += s.duration_ns;
                }
            }
            OpKind::EccDecode => {
                ecc += s.duration_ns;
                if flagged {
                    ecc_index += s.duration_ns;
                } else {
                    ecc_media += s.duration_ns;
                }
            }
            OpKind::ScrubStall => scrub += s.duration_ns,
            _ => {}
        }
        children.push(ChildSpan {
            kind: s.kind,
            bank: s.bank,
            block: s.block,
            start_ns: s.start_ns,
            duration_ns: s.duration_ns,
            index: flagged,
        });
    }
    // A demand root IS its own media window (its ECC children subtract
    // below); its stall precedes the busy span, so the request duration
    // covers both.
    let duration_ns = match root_rank(root.kind) {
        1 => {
            if ctx_is_index(root.ctx) {
                index += root.duration_ns;
            } else {
                media += root.duration_ns;
            }
            root.duration_ns + scrub
        }
        _ => root.duration_ns,
    };
    // Decode work is carved out of the read window it overlaps, so it
    // moves time between buckets rather than adding any.
    media = media.saturating_sub(ecc_media);
    index = index.saturating_sub(ecc_index);
    let used = media + ecc + index + scrub;
    let buckets = LatencyBuckets {
        media_ns: media,
        ecc_ns: ecc,
        alloc_index_ns: index,
        scrub_wait_ns: scrub,
        queue_wait_ns: duration_ns.saturating_sub(used),
        overrun_ns: used.saturating_sub(duration_ns),
    };
    RequestProfile {
        ctx: base,
        kind: root.kind,
        bank: root.bank,
        block: root.block,
        start_ns: root.start_ns,
        duration_ns,
        buckets,
        child_spans: children.len() as u64,
        children,
    }
}

fn kind_index(kind: OpKind) -> usize {
    OpKind::ALL.iter().position(|&k| k == kind).unwrap_or(0)
}

impl Profile {
    /// Collapsed-stack ("folded") export: one `root;bucket weight` line
    /// per nonzero bucket, weights in ns summed over all requests of
    /// that root kind, lexicographically sorted — ready for any
    /// flamegraph renderer that accepts folded stacks.
    pub fn to_folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.requests {
            for (name, weight) in r.buckets.named() {
                if weight > 0 {
                    *stacks
                        .entry(format!("{};{}", r.kind.name(), name))
                        .or_insert(0) += weight;
                }
            }
        }
        let mut out = String::new();
        for (stack, weight) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }

    /// JSONL export: one meta line, then one line per request in ctx
    /// order, fixed field order — byte-stable for a given trace.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"meta\",\"profile\":1,\"banks\":{},\"requests\":{},\
             \"orphan_events\":{},\"unattributed_events\":{}}}\n",
            self.banks,
            self.requests.len(),
            self.orphan_events,
            self.unattributed_events
        );
        for r in &self.requests {
            out.push_str(&format!(
                "{{\"type\":\"request\",\"ctx\":{},\"kind\":\"{}\",\"bank\":{},\"block\":{},\
                 \"t_ns\":{},\"duration_ns\":{},\"media_ns\":{},\"ecc_ns\":{},\
                 \"alloc_index_ns\":{},\"scrub_wait_ns\":{},\"queue_wait_ns\":{},\
                 \"overrun_ns\":{},\"children\":{}}}\n",
                r.ctx,
                r.kind.name(),
                r.bank,
                r.block,
                r.start_ns,
                r.duration_ns,
                r.buckets.media_ns,
                r.buckets.ecc_ns,
                r.buckets.alloc_index_ns,
                r.buckets.scrub_wait_ns,
                r.buckets.queue_wait_ns,
                r.buckets.overrun_ns,
                r.child_spans,
            ));
        }
        out
    }
}

fn fail(line: usize, what: &'static str) -> TraceDecodeError {
    TraceDecodeError { line, what }
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    rest.get(..digits)?.parse().ok()
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    rest.find('"').and_then(|end| rest.get(..end))
}

/// Parse a profile JSONL export back into a [`Profile`] (children are
/// not persisted, so each request's `children` vec comes back empty;
/// `child_spans` keeps the count). `parse(p.to_jsonl())` reproduces `p`
/// up to that, and re-exporting is byte-identical.
pub fn parse(doc: &str) -> Result<Profile, TraceDecodeError> {
    let mut meta: Option<(usize, u64, u64)> = None;
    let mut requests = Vec::new();
    for (idx, raw) in doc.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        match str_field(line, "type").ok_or(fail(lineno, "missing \"type\" field"))? {
            "meta" => {
                if u64_field(line, "profile") != Some(1) {
                    return Err(fail(lineno, "not a profile:1 document"));
                }
                meta = Some((
                    u64_field(line, "banks").ok_or(fail(lineno, "meta missing banks"))? as usize,
                    u64_field(line, "orphan_events")
                        .ok_or(fail(lineno, "meta missing orphan_events"))?,
                    u64_field(line, "unattributed_events")
                        .ok_or(fail(lineno, "meta missing unattributed_events"))?,
                ));
            }
            "request" => {
                let kind = str_field(line, "kind")
                    .and_then(OpKind::from_name)
                    .ok_or(fail(lineno, "unknown op kind"))?;
                let need = |key: &'static str| u64_field(line, key).ok_or(fail(lineno, key));
                requests.push(RequestProfile {
                    ctx: need("ctx")?,
                    kind,
                    bank: need("bank")? as u32,
                    block: need("block")? as u32,
                    start_ns: need("t_ns")?,
                    duration_ns: need("duration_ns")?,
                    buckets: LatencyBuckets {
                        media_ns: need("media_ns")?,
                        ecc_ns: need("ecc_ns")?,
                        alloc_index_ns: need("alloc_index_ns")?,
                        scrub_wait_ns: need("scrub_wait_ns")?,
                        queue_wait_ns: need("queue_wait_ns")?,
                        overrun_ns: need("overrun_ns")?,
                    },
                    child_spans: need("children")?,
                    children: Vec::new(),
                });
            }
            _ => return Err(fail(lineno, "unknown record type")),
        }
    }
    let (banks, orphan_events, unattributed_events) = meta.ok_or(fail(1, "no meta line"))?;
    Ok(Profile {
        banks,
        requests,
        orphan_events,
        unattributed_events,
    })
}

/// Aggregate rows for the per-kind table (and the JSON export).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindAttribution {
    /// Root kind.
    pub kind: OpKind,
    /// Requests of this kind.
    pub count: u64,
    /// Summed request duration, ns.
    pub duration_ns: u64,
    /// Summed buckets.
    pub buckets: LatencyBuckets,
}

impl Profile {
    /// Per-root-kind bucket totals, in [`OpKind::ALL`] order.
    pub fn by_kind(&self) -> Vec<KindAttribution> {
        let mut rows: Vec<KindAttribution> = Vec::new();
        for &kind in OpKind::ALL.iter() {
            let mut row = KindAttribution {
                kind,
                count: 0,
                duration_ns: 0,
                buckets: LatencyBuckets::default(),
            };
            for r in self.requests.iter().filter(|r| r.kind == kind) {
                row.count += 1;
                row.duration_ns += r.duration_ns;
                row.buckets.media_ns += r.buckets.media_ns;
                row.buckets.ecc_ns += r.buckets.ecc_ns;
                row.buckets.alloc_index_ns += r.buckets.alloc_index_ns;
                row.buckets.scrub_wait_ns += r.buckets.scrub_wait_ns;
                row.buckets.queue_wait_ns += r.buckets.queue_wait_ns;
                row.buckets.overrun_ns += r.buckets.overrun_ns;
            }
            if row.count > 0 {
                rows.push(row);
            }
        }
        rows
    }

    /// `(requests stalled, total stall ns)` per bank — the scrub
    /// interference table.
    pub fn scrub_interference(&self) -> Vec<(u32, u64, u64)> {
        let mut per_bank: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for r in &self.requests {
            if r.buckets.scrub_wait_ns > 0 {
                let slot = per_bank.entry(r.bank).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += r.buckets.scrub_wait_ns;
            }
        }
        per_bank
            .into_iter()
            .map(|(bank, (n, ns))| (bank, n, ns))
            .collect()
    }

    /// Human-readable rendering with a top-`top` slowest-requests table
    /// (what `profile-report` prints by default).
    pub fn render_text(&self, top: usize) -> String {
        let mut out = format!(
            "profile: {} requests over {} banks ({} orphan, {} unattributed events)\n",
            self.requests.len(),
            self.banks,
            self.orphan_events,
            self.unattributed_events
        );
        out.push_str("latency attribution by request kind (ns):\n");
        out.push_str(&format!(
            "{:>10} {:>7} {:>12} {:>12} {:>10} {:>12} {:>11} {:>11} {:>8}\n",
            "kind",
            "count",
            "duration",
            "media",
            "ecc",
            "alloc_index",
            "scrub_wait",
            "queue_wait",
            "overrun"
        ));
        for row in self.by_kind() {
            out.push_str(&format!(
                "{:>10} {:>7} {:>12} {:>12} {:>10} {:>12} {:>11} {:>11} {:>8}\n",
                row.kind.name(),
                row.count,
                row.duration_ns,
                row.buckets.media_ns,
                row.buckets.ecc_ns,
                row.buckets.alloc_index_ns,
                row.buckets.scrub_wait_ns,
                row.buckets.queue_wait_ns,
                row.buckets.overrun_ns
            ));
        }
        let interference = self.scrub_interference();
        if interference.is_empty() {
            out.push_str("scrub interference: none\n");
        } else {
            out.push_str("scrub interference by bank:\n");
            out.push_str(&format!(
                "{:>4} {:>16} {:>14}\n",
                "bank", "stalled_requests", "stall_ns"
            ));
            for (bank, n, ns) in interference {
                out.push_str(&format!("{bank:>4} {n:>16} {ns:>14}\n"));
            }
        }
        let mut slowest: Vec<&RequestProfile> = self.requests.iter().collect();
        slowest.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(a.ctx.cmp(&b.ctx)));
        slowest.truncate(top);
        out.push_str(&format!("top {} slowest requests:\n", slowest.len()));
        out.push_str(&format!(
            "{:>3} {:>10} {:>20} {:>4} {:>12} {:>12} {:>11} {:>8}\n",
            "#", "kind", "ctx", "bank", "start_ns", "duration_ns", "scrub_wait", "children"
        ));
        for (i, r) in slowest.iter().enumerate() {
            out.push_str(&format!(
                "{:>3} {:>10} {:>20} {:>4} {:>12} {:>12} {:>11} {:>8}\n",
                i + 1,
                r.kind.name(),
                format!("{:#x}", r.ctx),
                r.bank,
                r.start_ns,
                r.duration_ns,
                r.buckets.scrub_wait_ns,
                r.child_spans
            ));
        }
        let overruns = self
            .requests
            .iter()
            .filter(|r| r.buckets.overrun_ns > 0)
            .count();
        if overruns > 0 || self.orphan_events > 0 {
            out.push_str(&format!(
                "warning: {} requests with overrun, {} orphan events \
                 (ring overwrite or attribution bug)\n",
                overruns, self.orphan_events
            ));
        }
        out
    }

    /// The aggregate report as one JSON object with a fixed field order
    /// (no external dependencies) — what `profile-report --json` emits.
    pub fn to_json(&self) -> String {
        let kinds: Vec<String> = self
            .by_kind()
            .iter()
            .map(|row| {
                format!(
                    "{{\"kind\":\"{}\",\"count\":{},\"duration_ns\":{},\"media_ns\":{},\
                     \"ecc_ns\":{},\"alloc_index_ns\":{},\"scrub_wait_ns\":{},\
                     \"queue_wait_ns\":{},\"overrun_ns\":{}}}",
                    row.kind.name(),
                    row.count,
                    row.duration_ns,
                    row.buckets.media_ns,
                    row.buckets.ecc_ns,
                    row.buckets.alloc_index_ns,
                    row.buckets.scrub_wait_ns,
                    row.buckets.queue_wait_ns,
                    row.buckets.overrun_ns
                )
            })
            .collect();
        let scrub: Vec<String> = self
            .scrub_interference()
            .iter()
            .map(|(bank, n, ns)| {
                format!("{{\"bank\":{bank},\"stalled_requests\":{n},\"stall_ns\":{ns}}}")
            })
            .collect();
        let overruns = self
            .requests
            .iter()
            .filter(|r| r.buckets.overrun_ns > 0)
            .count();
        format!(
            "{{\"banks\":{},\"requests\":{},\"orphan_events\":{},\"unattributed_events\":{},\
             \"overrun_requests\":{},\"kinds\":[{}],\"scrub_interference\":[{}]}}",
            self.banks,
            self.requests.len(),
            self.orphan_events,
            self.unattributed_events,
            overruns,
            kinds.join(","),
            scrub.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_trace::{jsonl, pack_ctx, CtxClass, Recorder, TraceConfig, CTX_INDEX_FLAG};

    /// A hand-built trace: one KV get (index read + data read with ECC +
    /// a scrub stall), one bare demand write, one scrub pass.
    fn sample_doc() -> String {
        let rec = Recorder::buffered(2, &TraceConfig::new(64));
        let kv = pack_ctx(CtxClass::Kv, 3, 0);
        // index read 200 ns
        rec.span_ctx(
            OpKind::Read,
            0,
            1,
            (1000, 1200),
            (0, 0),
            kv | CTX_INDEX_FLAG,
        );
        // data read 200 ns, 3 corrected symbols → 48 ns of decode
        rec.span_ctx(OpKind::Read, 0, 9, (1200, 1400), (0, 3), kv);
        rec.span_ctx(OpKind::EccDecode, 0, 9, (1352, 1400), (3, 3), kv);
        // 300 ns of drained scrub debt
        rec.span_ctx(OpKind::ScrubStall, 0, 9, (1000, 1300), (300, 300), kv);
        // the KV root: 200 + 200 + 300 = 700 ns
        rec.span_ctx(OpKind::KvGet, 0, 1, (1000, 1700), (7, 2), kv);

        let demand = pack_ctx(CtxClass::Demand, 1, 0);
        rec.span_ctx(OpKind::Write, 1, 5, (2000, 3000), (1, 0), demand);

        let scrub = pack_ctx(CtxClass::Scrub, 1, 9);
        rec.span_ctx(OpKind::Refresh, 1, 7, (4000, 5200), (0, 0), scrub);
        rec.span_ctx(
            OpKind::ScrubPass,
            1,
            pcm_trace::NO_BLOCK,
            (4000, 6000),
            (9, 1),
            scrub,
        );
        jsonl::export(&rec.buffer().unwrap().snapshot())
    }

    #[test]
    fn buckets_partition_each_request_exactly() {
        let p = build(&sample_doc()).unwrap();
        assert_eq!(p.requests.len(), 3);
        assert_eq!(p.orphan_events, 0);
        for r in &p.requests {
            assert_eq!(
                r.buckets.media_ns
                    + r.buckets.ecc_ns
                    + r.buckets.alloc_index_ns
                    + r.buckets.scrub_wait_ns
                    + r.buckets.queue_wait_ns,
                r.duration_ns,
                "{r:?}"
            );
            assert_eq!(r.buckets.overrun_ns, 0, "{r:?}");
        }
    }

    #[test]
    fn kv_request_attributes_all_buckets() {
        let p = build(&sample_doc()).unwrap();
        let kv = p.requests.iter().find(|r| r.kind == OpKind::KvGet).unwrap();
        assert_eq!(kv.duration_ns, 700);
        assert_eq!(kv.buckets.alloc_index_ns, 200);
        assert_eq!(kv.buckets.media_ns, 200 - 48);
        assert_eq!(kv.buckets.ecc_ns, 48);
        assert_eq!(kv.buckets.scrub_wait_ns, 300);
        assert_eq!(kv.buckets.queue_wait_ns, 0);
        assert_eq!(kv.child_spans, 4);
    }

    #[test]
    fn scrub_pass_slack_lands_in_queue_wait() {
        let p = build(&sample_doc()).unwrap();
        let pass = p
            .requests
            .iter()
            .find(|r| r.kind == OpKind::ScrubPass)
            .unwrap();
        assert_eq!(pass.duration_ns, 2000);
        assert_eq!(pass.buckets.media_ns, 1200);
        assert_eq!(pass.buckets.queue_wait_ns, 800);
    }

    #[test]
    fn folded_and_jsonl_round_trip_are_stable() {
        let doc = sample_doc();
        let p = build(&doc).unwrap();
        let folded = p.to_folded();
        assert!(folded.contains("kv_get;scrub_wait 300\n"), "{folded}");
        assert!(folded.contains("scrub_pass;queue_wait 800\n"), "{folded}");
        // Lines are sorted and every weight is nonzero.
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        let jsonl_doc = p.to_jsonl();
        let reparsed = parse(&jsonl_doc).unwrap();
        assert_eq!(reparsed.to_jsonl(), jsonl_doc);
        assert_eq!(reparsed.requests.len(), p.requests.len());
        for (a, b) in reparsed.requests.iter().zip(&p.requests) {
            assert_eq!(a.buckets, b.buckets);
            assert_eq!(a.child_spans, b.child_spans);
        }
    }

    #[test]
    fn render_and_json_are_deterministic() {
        let doc = sample_doc();
        let a = build(&doc).unwrap();
        let b = build(&doc).unwrap();
        assert_eq!(a.render_text(5), b.render_text(5));
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.render_text(5).contains("scrub interference by bank:"));
        assert!(a.to_json().starts_with("{\"banks\":2,"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(build("not json\n").is_err());
        assert!(parse("{\"type\":\"meta\",\"profile\":2}\n").is_err());
        assert!(parse("").is_err());
    }
}
