//! Simulation parameters (Table 5) and the four §7 design points.

/// Table 5's system parameters, with the write-throughput constraint
/// expressed as the paper's four-write-window: at most four 64B writes
/// (including refreshes) per 6.4 µs, i.e. 40 MB/s sustained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Core clock (paper: 3.2 GHz out-of-order core).
    pub cpu_freq_ghz: f64,
    /// PCM array read latency, ns (paper: 200 ns).
    pub read_latency_ns: f64,
    /// PCM block write latency, ns (paper: 1 µs).
    pub write_latency_ns: f64,
    /// Four-write-window length, ns (paper: 6.4 µs).
    pub write_window_ns: f64,
    /// Writes permitted per window (paper: 4 → 40 MB/s of 64B blocks).
    pub writes_per_window: u32,
    /// Independent banks (paper: 8).
    pub banks: usize,
    /// Blocks in the simulated device. The refresh *op rate* — the
    /// quantity that contends with demand traffic — is `blocks /
    /// refresh_interval`, which the default scaled geometry keeps equal
    /// to the paper's 16 GiB @ 17 min (see DESIGN.md §3).
    pub blocks: u64,
    /// Refresh interval, seconds.
    pub refresh_interval_s: f64,
    /// Bank-busy time per block refresh, ns (paper: 1 µs).
    pub block_refresh_ns: f64,
    /// Posted-write queue depth before the core stalls.
    pub write_queue_depth: usize,
    /// Outstanding-read window (memory-level parallelism) before the
    /// core stalls on the oldest read.
    pub max_outstanding_reads: usize,
}

impl Default for SimParams {
    fn default() -> Self {
        // Scaled device: 16 MiB instead of 16 GiB, interval scaled by the
        // same 1/1024 so the refresh op rate (blocks/interval ≈ 2.63e5/s)
        // matches the paper's 16 GiB @ 17 min exactly.
        Self {
            cpu_freq_ghz: 3.2,
            read_latency_ns: 200.0,
            write_latency_ns: 1000.0,
            write_window_ns: 6400.0,
            writes_per_window: 4,
            banks: 8,
            blocks: (16 << 20) / 64,
            // 17 min (1024 s) divided by the same 1/1024 capacity scale.
            refresh_interval_s: 1.0,
            block_refresh_ns: 1000.0,
            write_queue_depth: 32,
            max_outstanding_reads: 8,
        }
    }
}

impl SimParams {
    /// Refresh operations per second across the device.
    pub fn refresh_ops_per_sec(&self) -> f64 {
        self.blocks as f64 / self.refresh_interval_s
    }

    /// Sustained write bandwidth implied by the window, bytes/second.
    pub fn write_bandwidth_bytes_per_sec(&self) -> f64 {
        64.0 * self.writes_per_window as f64 / (self.write_window_ns * 1e-9)
    }

    /// Fraction of the device's write-token bandwidth consumed by refresh.
    pub fn refresh_write_share(&self) -> f64 {
        let tokens_per_sec = self.writes_per_window as f64 / (self.write_window_ns * 1e-9);
        self.refresh_ops_per_sec() / tokens_per_sec
    }
}

/// The four design points of Figure 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// 4LCo with per-bank periodic refresh (banks block for 1 µs/refresh
    /// and refresh consumes write bandwidth).
    FourLcRef,
    /// 4LCo with an ideal refresh scheduler: no read/bank contention, but
    /// refresh still consumes write bandwidth (§7).
    FourLcRefOpt,
    /// 4LCo with refresh impossibly turned off (upper bound).
    FourLcNoRef,
    /// The proposed 3LC: no refresh, 5 ns read-path adder instead of
    /// BCH-10's 36.25 ns.
    ThreeLc,
}

impl DesignPoint {
    /// All four, in Figure 16's bar order.
    pub const ALL: [DesignPoint; 4] = [
        DesignPoint::FourLcRef,
        DesignPoint::FourLcRefOpt,
        DesignPoint::FourLcNoRef,
        DesignPoint::ThreeLc,
    ];

    /// Display name as in Figure 16.
    pub fn name(self) -> &'static str {
        match self {
            DesignPoint::FourLcRef => "4LC-REF",
            DesignPoint::FourLcRefOpt => "4LC-REF-OPT",
            DesignPoint::FourLcNoRef => "4LC-NO-REF",
            DesignPoint::ThreeLc => "3LC",
        }
    }

    /// ECC adder on the read path, ns (§7: 36.25 ns BCH-10 vs 5 ns 3LC).
    pub fn ecc_read_adder_ns(self) -> f64 {
        match self {
            DesignPoint::ThreeLc => 5.0,
            _ => 36.25,
        }
    }

    /// Does this design refresh at all?
    pub fn refreshes(self) -> bool {
        matches!(self, DesignPoint::FourLcRef | DesignPoint::FourLcRefOpt)
    }

    /// Do refreshes block the bank (false for the OPT idealization)?
    pub fn refresh_blocks_bank(self) -> bool {
        matches!(self, DesignPoint::FourLcRef)
    }
}

/// Per-operation energies for the energy/power accounting. Absolute
/// values are representative of published PCM prototypes (reads ~2 nJ,
/// iterative MLC writes ~16 nJ per 64B block, background power a few mW
/// for the array periphery at this capacity); Figure 16 reports
/// everything *normalized to 4LC-REF*, so only the ratios matter — they
/// put demand writes, refresh, and background in the same league, as the
/// paper's stacked bars do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per 64B array read, nJ.
    pub read_nj: f64,
    /// Energy per 64B block write, nJ (iterative MLC writes are costly).
    pub write_nj: f64,
    /// Energy per block refresh (a read + a write), nJ.
    pub refresh_nj: f64,
    /// Background (periphery + logic die) power, W.
    pub static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            read_nj: 2.0,
            write_nj: 16.0,
            refresh_nj: 18.0,
            static_w: 0.005,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_table5() {
        let p = SimParams::default();
        assert_eq!(p.cpu_freq_ghz, 3.2);
        assert_eq!(p.read_latency_ns, 200.0);
        assert_eq!(p.write_latency_ns, 1000.0);
        assert_eq!(p.banks, 8);
        // 40 MB/s from the four-write-window.
        assert!((p.write_bandwidth_bytes_per_sec() - 40e6).abs() < 1e-6);
    }

    #[test]
    fn scaled_refresh_rate_matches_paper_geometry() {
        let p = SimParams::default();
        // Paper: 2.68e8 blocks / 1024 s ≈ 2.62e5 refreshes per second.
        let paper_rate = 268_435_456.0 / 1024.0;
        let scaled_rate = p.refresh_ops_per_sec();
        assert!(
            (scaled_rate - paper_rate).abs() / paper_rate < 1e-12,
            "scaled {scaled_rate} vs paper {paper_rate}"
        );
    }

    #[test]
    fn refresh_consumes_42_percent_of_write_bandwidth() {
        // The §4.1 arithmetic: one refresh pass takes 410 s of the 1024 s
        // interval → ~42% of write tokens go to refresh.
        let p = SimParams::default();
        let share = p.refresh_write_share();
        assert!((0.40..0.44).contains(&share), "{share}");
    }

    #[test]
    fn design_point_properties() {
        assert!(DesignPoint::FourLcRef.refresh_blocks_bank());
        assert!(!DesignPoint::FourLcRefOpt.refresh_blocks_bank());
        assert!(DesignPoint::FourLcRefOpt.refreshes());
        assert!(!DesignPoint::ThreeLc.refreshes());
        assert!(DesignPoint::ThreeLc.ecc_read_adder_ns() < 6.0);
        assert_eq!(DesignPoint::FourLcRef.name(), "4LC-REF");
    }
}
