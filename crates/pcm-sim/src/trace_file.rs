//! External trace input: run the simulator on *real* memory traces
//! instead of the synthetic profiles.
//!
//! The format is one access per line, deliberately trivial to produce
//! from Pin/DynamoRIO/perf scripts or from McSim-style simulators:
//!
//! ```text
//! # comment lines and blanks are skipped
//! <instruction-count> <R|W> <address-or-block>
//! 1000 R 0x7f001040
//! 1012 W 0x7f001080
//! ```
//!
//! Addresses are mapped to 64-byte blocks (`addr / 64 % device_blocks`);
//! values without `0x` are parsed as decimal. Instruction counts must be
//! non-decreasing (equal counts are nudged forward by one, matching the
//! generator's strictly-increasing invariant).

use crate::workload::MemOp;

/// A parsed trace, replayable as an iterator of [`MemOp`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileTrace {
    ops: Vec<MemOp>,
    /// Instruction count of the last record *as written in the trace*,
    /// before monotonicity nudging. Intensity statistics use this so
    /// nudged duplicates don't skew them.
    raw_instructions: u64,
}

/// Parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Line number of the offending record; `0` for configuration errors
    /// that are independent of any line (e.g. a zero-block device).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "trace: {}", self.message)
        } else {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceParseError {}

impl FileTrace {
    /// Parse trace text (see module docs for the format), mapping
    /// addresses onto `device_blocks` 64-byte blocks.
    ///
    /// A zero-block device is a configuration error, reported as a
    /// [`TraceParseError`] with `line == 0` rather than a panic.
    pub fn parse(text: &str, device_blocks: u64) -> Result<FileTrace, TraceParseError> {
        if device_blocks == 0 {
            return Err(TraceParseError {
                line: 0,
                message: "device must have at least one block".into(),
            });
        }
        let mut ops = Vec::new();
        let mut last_raw = 0u64;
        let mut last_emitted = 0u64;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let err = |message: String| TraceParseError { line, message };
            let instr: u64 = fields
                .next()
                .ok_or_else(|| err("missing instruction count".into()))?
                .parse()
                .map_err(|e| err(format!("bad instruction count: {e}")))?;
            let kind = fields
                .next()
                .ok_or_else(|| err("missing R/W field".into()))?;
            let is_write = match kind {
                "R" | "r" => false,
                "W" | "w" => true,
                other => return Err(err(format!("expected R or W, got '{other}'"))),
            };
            let addr_str = fields.next().ok_or_else(|| err("missing address".into()))?;
            let addr =
                parse_u64(addr_str).ok_or_else(|| err(format!("bad address '{addr_str}'")))?;
            if let Some(extra) = fields.next() {
                return Err(err(format!("unexpected trailing field '{extra}'")));
            }
            if instr < last_raw {
                return Err(err(format!(
                    "instruction count went backwards ({instr} after {last_raw})"
                )));
            }
            last_raw = instr;
            // Enforce strict monotonicity (duplicate counts nudge ahead).
            let at_instruction = if ops.is_empty() {
                instr.max(1)
            } else {
                instr.max(last_emitted + 1)
            };
            last_emitted = at_instruction;
            ops.push(MemOp {
                at_instruction,
                is_write,
                block: (addr / 64) % device_blocks,
            });
        }
        Ok(FileTrace {
            ops,
            raw_instructions: last_raw,
        })
    }

    /// Instruction count of the final trace record as written, before
    /// any monotonicity nudging.
    pub fn raw_instructions(&self) -> u64 {
        self.raw_instructions
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations were parsed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, in order.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Iterate the trace (cloned ops).
    pub fn iter(&self) -> impl Iterator<Item = MemOp> + '_ {
        self.ops.iter().copied()
    }

    /// Observed memory intensity in accesses per kilo-instruction,
    /// over the trace's *raw* instruction span — nudged duplicate
    /// counts don't inflate the denominator.
    pub fn mpki(&self) -> f64 {
        if self.raw_instructions > 0 {
            self.ops.len() as f64 * 1000.0 / self.raw_instructions as f64
        } else {
            0.0
        }
    }

    /// Observed write fraction.
    pub fn write_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_write).count() as f64 / self.ops.len() as f64
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        let text = "\
# a comment
1000 R 0x7f001040

1012 W 0x7f001080
2000 r 128
";
        let t = FileTrace::parse(text, 1024).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.ops()[0].is_write);
        assert!(t.ops()[1].is_write);
        assert_eq!(t.ops()[2].block, 2); // 128 / 64
        assert_eq!(t.ops()[0].block, (0x7f001040u64 / 64) % 1024);
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        for (text, expect_line) in [
            ("1000 X 64", 1),
            ("fine\n", 1),
            ("1000 R 64\n900 W 64", 2),
            ("1000 R 64 extra", 1),
        ] {
            let e = FileTrace::parse(text, 16).unwrap_err();
            assert_eq!(e.line, expect_line, "{text:?} -> {e}");
        }
    }

    #[test]
    fn duplicate_instruction_counts_are_nudged() {
        let t = FileTrace::parse("5 R 0\n5 R 64\n5 W 128\n", 16).unwrap();
        let at: Vec<u64> = t.ops().iter().map(|o| o.at_instruction).collect();
        assert_eq!(at, vec![5, 6, 7]);
        // Intensity uses the raw final count (5), not the nudged 7:
        // 3 accesses over 5 instructions = 600 MPKI.
        assert_eq!(t.raw_instructions(), 5);
        assert!((t.mpki() - 600.0).abs() < 1e-12, "{}", t.mpki());
    }

    #[test]
    fn zero_block_device_is_an_error_not_a_panic() {
        let e = FileTrace::parse("1000 R 0x40\n", 0).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("at least one block"), "{e}");
    }

    #[test]
    fn statistics() {
        let t = FileTrace::parse("500 R 0\n1000 W 64\n", 16).unwrap();
        assert!((t.mpki() - 2.0).abs() < 1e-12);
        assert!((t.write_fraction() - 0.5).abs() < 1e-12);
        let empty = FileTrace::parse("# nothing\n", 16).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.mpki(), 0.0);
    }

    #[test]
    fn addresses_wrap_to_device() {
        let t = FileTrace::parse("1 R 0xFFFFFFFF0\n", 8).unwrap();
        assert!(t.ops()[0].block < 8);
    }
}
