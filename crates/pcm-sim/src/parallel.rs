//! Concurrent simulation backend.
//!
//! [`simulate`](crate::engine::simulate()) is a pure function of its
//! arguments — each (design, workload) cell of the Figure 16 matrix is
//! independent — so the matrix fans out across OS threads with no
//! synchronization beyond joining. Results are written back by cell
//! index, which makes the output bit-identical to the sequential
//! [`figure16`](crate::report::figure16) regardless of thread count or
//! scheduling.

use crate::config::{DesignPoint, EnergyModel, SimParams};
use crate::engine::{simulate, SimResult};
use crate::report::Figure16Bar;
use crate::workload::WorkloadProfile;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run a list of (design, workload) jobs across `threads` OS threads
/// (`0` is treated as `1`).
///
/// Job `i` of the output corresponds to job `i` of the input; the
/// results are identical to calling [`simulate`] on each job in order.
/// Workers claim job indices from a lock-free counter and keep private
/// result lists that are merged by index after the join, so the fan-out
/// involves no locks at all.
pub fn simulate_matrix(
    params: &SimParams,
    energy: &EnergyModel,
    jobs: &[(DesignPoint, WorkloadProfile)],
    instructions: u64,
    seed: u64,
    threads: usize,
) -> Vec<SimResult> {
    let next = AtomicUsize::new(0);
    let mut per_thread: Vec<Vec<(usize, SimResult)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.clamp(1, jobs.len().max(1)))
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        // Work-ticket CAS: threads claim disjoint job
                        // indices; the scope join publishes results.
                        // pcm-lint: atomic(job-claim)
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(design, profile)) = jobs.get(i) else {
                            break;
                        };
                        mine.push((
                            i,
                            simulate(params, energy, design, profile, instructions, seed),
                        ));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(mine) => mine,
                // A worker panicking means `simulate` itself panicked;
                // re-raise rather than return a hole-filled matrix.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out: Vec<Option<SimResult>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    for (i, r) in per_thread.drain(..).flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        // pcm-lint: allow(no-panic-lib) — infallible: fetch_add hands every index 0..jobs.len() to exactly one worker.
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// Concurrent [`figure16`](crate::report::figure16): the full
/// 6-workload × 4-design matrix, fanned out over `threads` threads.
///
/// Produces exactly the same bars (same order, same floating-point
/// values) as the sequential version — `simulate` is deterministic, so
/// the baseline run each bar normalizes against is recomputed from the
/// matrix's own 4LC-REF cell instead of a separate serial pass.
pub fn figure16_parallel(
    params: &SimParams,
    energy: &EnergyModel,
    instructions: u64,
    seed: u64,
    threads: usize,
) -> Vec<Figure16Bar> {
    let profiles = WorkloadProfile::figure16_suite();
    let mut jobs: Vec<(DesignPoint, WorkloadProfile)> = Vec::new();
    for profile in &profiles {
        for design in DesignPoint::ALL {
            jobs.push((design, *profile));
        }
    }
    let raws = simulate_matrix(params, energy, &jobs, instructions, seed, threads);

    let mut bars = Vec::with_capacity(jobs.len());
    for (chunk_idx, profile) in profiles.iter().enumerate() {
        let chunk = &raws[chunk_idx * DesignPoint::ALL.len()..][..DesignPoint::ALL.len()];
        let baseline = chunk
            .iter()
            .find(|r| r.design == DesignPoint::FourLcRef)
            // pcm-lint: allow(no-panic-lib) — infallible: the jobs matrix is built from DesignPoint::ALL, which contains FourLcRef.
            .expect("matrix contains the 4LC-REF baseline");
        let base_energy = baseline.total_energy_nj();
        let base_power = baseline.avg_power_w();
        for raw in chunk {
            bars.push(Figure16Bar {
                workload: profile.name.to_string(),
                design: raw.design,
                norm_exec_time: raw.exec_time_ns / baseline.exec_time_ns,
                norm_energy: raw.total_energy_nj() / base_energy,
                norm_power: raw.avg_power_w() / base_power,
                energy_breakdown: [
                    raw.read_energy_nj / base_energy,
                    raw.write_energy_nj / base_energy,
                    raw.refresh_energy_nj / base_energy,
                    raw.static_energy_nj / base_energy,
                ],
                scrub_bandwidth_tax: raw.scrub_bandwidth_tax,
                bank_utilization: raw.bank_utilization.clone(),
                raw: raw.clone(),
            });
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::figure16;

    #[test]
    fn parallel_matrix_matches_sequential_bit_for_bit() {
        let p = SimParams::default();
        let e = EnergyModel::default();
        let sequential = figure16(&p, &e, 200_000, 11);
        for threads in [1, 3, 8] {
            let parallel = figure16_parallel(&p, &e, 200_000, 11, threads);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn simulate_matrix_preserves_job_order() {
        let p = SimParams::default();
        let e = EnergyModel::default();
        let stream = WorkloadProfile::by_name("STREAM").unwrap();
        let namd = WorkloadProfile::by_name("namd").unwrap();
        let jobs = [
            (DesignPoint::ThreeLc, stream),
            (DesignPoint::FourLcRef, namd),
            (DesignPoint::ThreeLc, namd),
        ];
        let out = simulate_matrix(&p, &e, &jobs, 100_000, 3, 4);
        assert_eq!(out.len(), 3);
        for (r, (design, profile)) in out.iter().zip(jobs) {
            assert_eq!(r.design, design);
            assert_eq!(r.workload, profile.name);
        }
    }
}
