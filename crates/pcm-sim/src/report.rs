//! Figure 16 assembly: run the 6-workload × 4-design matrix and
//! normalize execution time, energy, and power to 4LC-REF.

use crate::config::{DesignPoint, EnergyModel, SimParams};
use crate::engine::{simulate, SimResult};
use crate::workload::WorkloadProfile;

/// One normalized Figure 16 bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure16Bar {
    /// Workload name (owned; file-trace driven matrices can use custom
    /// labels).
    pub workload: String,
    /// Design point.
    pub design: DesignPoint,
    /// Execution time / 4LC-REF's.
    pub norm_exec_time: f64,
    /// Total energy / 4LC-REF's.
    pub norm_energy: f64,
    /// Average power / 4LC-REF's.
    pub norm_power: f64,
    /// Energy breakdown (read, write, refresh, static) normalized to
    /// 4LC-REF's total — the stacked-bar decomposition of Figure 16.
    pub energy_breakdown: [f64; 4],
    /// Fraction of write-token bandwidth this design spent on refresh
    /// (the §4.1 scrub bandwidth tax; 0 for refresh-free designs).
    pub scrub_bandwidth_tax: f64,
    /// Per-bank busy fraction over the run, one entry per bank.
    pub bank_utilization: Vec<f64>,
    /// The raw simulation result behind the bar.
    pub raw: SimResult,
}

/// Run the full Figure 16 matrix.
pub fn figure16(
    params: &SimParams,
    energy: &EnergyModel,
    instructions: u64,
    seed: u64,
) -> Vec<Figure16Bar> {
    let mut bars = Vec::new();
    for profile in WorkloadProfile::figure16_suite() {
        let baseline = simulate(
            params,
            energy,
            DesignPoint::FourLcRef,
            profile,
            instructions,
            seed,
        );
        let base_energy = baseline.total_energy_nj();
        let base_power = baseline.avg_power_w();
        for design in DesignPoint::ALL {
            let raw = simulate(params, energy, design, profile, instructions, seed);
            bars.push(Figure16Bar {
                workload: profile.name.to_string(),
                design,
                norm_exec_time: raw.exec_time_ns / baseline.exec_time_ns,
                norm_energy: raw.total_energy_nj() / base_energy,
                norm_power: raw.avg_power_w() / base_power,
                energy_breakdown: [
                    raw.read_energy_nj / base_energy,
                    raw.write_energy_nj / base_energy,
                    raw.refresh_energy_nj / base_energy,
                    raw.static_energy_nj / base_energy,
                ],
                scrub_bandwidth_tax: raw.scrub_bandwidth_tax,
                bank_utilization: raw.bank_utilization.clone(),
                raw,
            });
        }
    }
    bars
}

/// Geometric-mean summary across the memory-intensive workloads (the
/// paper's headline "33% higher performance and 24% lower energy").
pub fn summary_gains(bars: &[Figure16Bar]) -> (f64, f64) {
    let three: Vec<&Figure16Bar> = bars
        .iter()
        .filter(|b| b.design == DesignPoint::ThreeLc && b.workload != "namd")
        .collect();
    // pcm-lint: allow(no-panic-lib) — contract: Figure 16 bars always include the 3LC design; an empty set is a harness bug
    assert!(!three.is_empty());
    let gm = |f: &dyn Fn(&Figure16Bar) -> f64| -> f64 {
        (three.iter().map(|b| f(b).ln()).sum::<f64>() / three.len() as f64).exp()
    };
    let perf_gain = 1.0 / gm(&|b| b.norm_exec_time) - 1.0;
    let energy_saving = 1.0 - gm(&|b| b.norm_energy);
    (perf_gain, energy_saving)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Vec<Figure16Bar> {
        figure16(&SimParams::default(), &EnergyModel::default(), 1_000_000, 7)
    }

    #[test]
    fn baseline_bars_are_unity() {
        for b in matrix() {
            if b.design == DesignPoint::FourLcRef {
                assert!((b.norm_exec_time - 1.0).abs() < 1e-12);
                assert!((b.norm_energy - 1.0).abs() < 1e-12);
                assert!((b.norm_power - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matrix_is_complete() {
        let bars = matrix();
        assert_eq!(bars.len(), 24, "6 workloads × 4 designs");
    }

    #[test]
    fn figure16_shape() {
        // 3LC beats 4LC-REF on time and energy for every memory-intensive
        // workload; namd is flat.
        for b in matrix() {
            if b.design != DesignPoint::ThreeLc {
                continue;
            }
            if b.workload == "namd" {
                assert!((b.norm_exec_time - 1.0).abs() < 0.02, "namd {b:?}");
            } else {
                assert!(
                    b.norm_exec_time < 0.9,
                    "{}: {}",
                    b.workload,
                    b.norm_exec_time
                );
                assert!(b.norm_energy < 0.95, "{}: {}", b.workload, b.norm_energy);
            }
        }
    }

    #[test]
    fn headline_gains_in_paper_ballpark() {
        // Paper: 33% higher performance, 24% lower energy (3LC vs
        // 4LC-REF). With synthetic traces in place of the authors' McSim
        // runs the averages land in the same region but not on the same
        // point (fully write-bound workloads pay the whole 1.72× refresh
        // bandwidth tax here) — see EXPERIMENTS.md. Accept 20–75% perf
        // and 10–55% energy.
        let (perf, energy) = summary_gains(&matrix());
        assert!((0.20..0.75).contains(&perf), "perf gain {perf}");
        assert!((0.10..0.55).contains(&energy), "energy saving {energy}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        for b in matrix() {
            let sum: f64 = b.energy_breakdown.iter().sum();
            assert!((sum - b.norm_energy).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn bars_carry_scrub_tax_and_utilization() {
        let params = SimParams::default();
        for b in matrix() {
            assert_eq!(b.bank_utilization.len(), params.banks, "{b:?}");
            if b.design.refreshes() {
                assert!(b.scrub_bandwidth_tax > 0.3, "{:?}", b.design);
            } else {
                assert_eq!(b.scrub_bandwidth_tax, 0.0, "{:?}", b.design);
            }
        }
    }

    #[test]
    fn refresh_breakdown_vanishes_without_refresh() {
        for b in matrix() {
            if !b.design.refreshes() {
                assert_eq!(b.energy_breakdown[2], 0.0);
            } else if b.workload != "namd" {
                assert!(b.energy_breakdown[2] > 0.0);
            }
        }
    }
}
