//! Integration tests for the concurrent scrub subsystem: the sharded
//! engine's integer-tick scrubber against the sequential
//! `RefreshController`, background scrub threads interleaved with
//! demand sessions, long-horizon schedule exactness, and the shared
//! metrics registry surfaced from all three engine handles.

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::device::{
    CellOrganization, DeviceBuilder, PcmDevice, RefreshController, ShardedPcmDevice,
    ShardedScrubber,
};

const BLOCKS: usize = 16;
const BANKS: usize = 4;

fn builder(seed: u64) -> DeviceBuilder {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(BLOCKS)
        .banks(BANKS)
        .seed(seed)
}

fn pattern(block: usize) -> Vec<u8> {
    (0..64).map(|i| (block * 17 + i) as u8).collect()
}

#[test]
fn inline_scrub_matches_sequential_controller_end_to_end() {
    let mut seq = builder(404).build().unwrap();
    let sharded = builder(404).build_sharded().unwrap();
    for b in 0..BLOCKS {
        seq.write_block(b, &pattern(b)).unwrap();
        sharded.write_block(b, &pattern(b)).unwrap();
    }
    let mut ctl = RefreshController::new(1.6);
    let mut scrubber = ShardedScrubber::new(&sharded, 1.6);
    for k in 1..=6u32 {
        let t = 1.6 * k as f64;
        seq.advance_time(t - seq.now());
        sharded.advance_time(t - sharded.now());
        let a = ctl.run_until(&mut seq, t);
        let b = scrubber.run_until(&sharded, t);
        assert_eq!(a, b, "scrub report diverged at period {k}");
    }
    assert_eq!(seq.stats(), sharded.stats());
    assert_eq!(seq.metrics().snapshot(), sharded.metrics().snapshot());
    for b in 0..BLOCKS {
        assert_eq!(
            seq.read_block(b).unwrap(),
            sharded.read_block(b).unwrap(),
            "block {b}"
        );
    }
}

#[test]
fn background_scrub_interleaves_with_demand_sessions() {
    // Free-running interleave: demand writers hammer their own blocks
    // while the scrubber walks the device from two scrub threads. The
    // interleaving is nondeterministic, so this asserts the invariants
    // that must hold regardless of schedule: exact scrub count, no
    // failures, every block readable with its writer's payload, and a
    // metrics registry whose totals agree with the device stats.
    let dev = builder(77).build_sharded().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &pattern(b)).unwrap();
    }
    let mut scrubber = ShardedScrubber::new(&dev, 1.6);
    const PERIODS: u32 = 4;
    let mut scrub_report = mlc_pcm::device::RefreshReport::default();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let dev = &dev;
            scope.spawn(move || {
                let mut session = dev.session();
                for round in 0..25 {
                    for block in (t..BLOCKS).step_by(4) {
                        session.write_block(block, &pattern(block)).unwrap();
                    }
                    if round % 10 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Scrub from the test thread (which itself fans out to two
        // scrub threads) while the demand writers run.
        for k in 1..=PERIODS {
            let t = 1.6 * k as f64;
            dev.advance_time(t - dev.now());
            scrub_report.merge(&scrubber.run_until_concurrent(&dev, t, 2));
        }
    });
    let expected_scrubs = (BLOCKS as u64) * PERIODS as u64;
    assert_eq!(scrub_report.blocks_refreshed, expected_scrubs);
    assert_eq!(scrub_report.failures, 0);
    assert_eq!(scrubber.completed(), expected_scrubs);

    let stats = dev.stats();
    assert_eq!(stats.refreshes, expected_scrubs);
    assert_eq!(stats.writes, (BLOCKS as u64) + 4 * 25 * (BLOCKS as u64 / 4));
    let totals = dev.metrics().snapshot().total();
    assert_eq!(totals.scrubs, stats.refreshes);
    assert_eq!(totals.writes, stats.writes);
    assert_eq!(totals.uncorrectables, 0);
    for b in 0..BLOCKS {
        assert_eq!(dev.read_block(b).unwrap().data, pattern(b), "block {b}");
    }
}

#[test]
fn long_horizon_schedule_is_exact_at_every_thread_count() {
    // interval / blocks is not binary-representable, so an accumulating
    // scheduler drifts over thousands of launches; the integer-tick
    // schedule performs exactly blocks × intervals scrubs from every
    // engine and at every thread count.
    const INTERVALS: u64 = 500;
    let horizon = 0.3 * INTERVALS as f64;

    let mut seq = builder(5).build().unwrap();
    for b in 0..BLOCKS {
        seq.write_block(b, &pattern(b)).unwrap();
    }
    let mut ctl = RefreshController::new(0.3);
    seq.advance_time(horizon);
    let rep = ctl.run_until(&mut seq, horizon);
    assert_eq!(rep.blocks_refreshed, BLOCKS as u64 * INTERVALS);

    for threads in [1usize, 2, 4, 8] {
        let dev = builder(5).build_sharded().unwrap();
        for b in 0..BLOCKS {
            dev.write_block(b, &pattern(b)).unwrap();
        }
        let mut scrubber = ShardedScrubber::new(&dev, 0.3);
        dev.advance_time(horizon);
        let rep = scrubber.run_until_concurrent(&dev, horizon, threads);
        assert_eq!(
            rep.blocks_refreshed,
            BLOCKS as u64 * INTERVALS,
            "threads={threads}"
        );
        assert_eq!(rep.failures, 0, "threads={threads}");
        assert_eq!(dev.stats().refreshes, BLOCKS as u64 * INTERVALS);
        assert_eq!(dev.stats(), seq.stats(), "threads={threads}");
    }
}

#[test]
fn metrics_registry_is_shared_across_handles_and_conversions() {
    let dev = builder(12).build_sharded().unwrap();
    // Session records into the same registry as the device handle.
    {
        let mut session = dev.session();
        session.write_block(3, &pattern(3)).unwrap();
        session.read_block(3).unwrap();
        assert_eq!(session.metrics().snapshot(), dev.metrics().snapshot());
    }
    let bank = 3 % BANKS;
    let snap = dev.metrics().snapshot();
    assert_eq!(snap.per_bank[bank].writes, 1);
    assert_eq!(snap.per_bank[bank].reads, 1);
    assert!(snap.per_bank[bank].busy_ns > 0);

    // The registry travels through engine conversions: counters keep
    // accumulating into the same banks.
    let mut seq: PcmDevice = dev.into();
    seq.write_block(3, &pattern(3)).unwrap();
    assert_eq!(seq.metrics().snapshot().per_bank[bank].writes, 2);
    let back: ShardedPcmDevice = seq.into();
    back.read_block(3).unwrap();
    let total = back.metrics().snapshot().total();
    assert_eq!(total.writes, 2);
    assert_eq!(total.reads, 2);
    // Latency histogram saw every successful op.
    let hist: u64 = back.metrics().snapshot().per_bank[bank]
        .latency_buckets
        .iter()
        .sum();
    assert_eq!(hist, 4);
}
