//! Corruption-safety and allocator-soundness properties of the store.
//!
//! 1. A store reopened over a device with injected bit errors either
//!    returns the correct value or a typed `CorruptPage` error — it
//!    never silently returns wrong bytes (the page CRC sits above the
//!    block stack's ECC precisely for errors that slip through).
//! 2. The free list never hands the same page to two chains, no matter
//!    how many concurrent sessions hammer put/delete.

use mlc_pcm::device::{DeviceBuilder, ShardedPcmDevice};
use mlc_pcm::store::workload::value_for;
use mlc_pcm::store::{Page, PageType, PcmStore, StoreConfig, StoreError, NO_PAGE};
use proptest::prelude::*;

const BLOCKS: usize = 256;
const BANKS: usize = 4;

fn device(seed: u64) -> ShardedPcmDevice {
    DeviceBuilder::new()
        .blocks(BLOCKS)
        .banks(BANKS)
        .seed(seed)
        .build_sharded()
        .unwrap()
}

fn preload(store: &PcmStore, keys: u64, value_bytes: usize) {
    for k in 0..keys {
        store.put(k, &value_for(k, value_bytes)).unwrap();
    }
}

/// Walk the on-device free list, asserting it is acyclic with unique
/// members that all decode as free pages; returns the member set.
fn walk_free_list(store: &PcmStore) -> std::collections::BTreeSet<u32> {
    let dev = store.device();
    let mut seen = std::collections::BTreeSet::new();
    let mut at = store.superblock().free_head;
    while at != NO_PAGE {
        assert!(seen.insert(at), "free list revisits page {at}");
        assert!(seen.len() <= BLOCKS, "free list cycles");
        let raw = dev.read_block(at as usize).unwrap();
        let page = Page::decode(&raw.data).unwrap();
        assert_eq!(page.page_type, PageType::Free, "page {at} not free");
        at = page.next;
    }
    assert_eq!(
        seen.len() as u32,
        store.free_pages(),
        "free count disagrees with the walked list"
    );
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flip one bit anywhere on the device, reopen, and read every key:
    /// each get must yield the original bytes or a typed store error.
    #[test]
    fn injected_bit_errors_never_yield_wrong_values(
        seed in 0u64..8,
        keys in 4u64..20,
        target in 0usize..BLOCKS,
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let value_bytes = 70; // two pages per value
        let dev = device(seed);
        let store = PcmStore::format(dev, StoreConfig { dir_buckets: 8, stripes: 4 }).unwrap();
        preload(&store, keys, value_bytes);

        // Inject: a post-ECC single-bit error on one stored page.
        let dev = store.into_device();
        let mut raw = dev.read_block(target).unwrap().data;
        raw[byte] ^= 1 << bit;
        dev.write_block(target, &raw).unwrap();

        match PcmStore::open(dev) {
            // Superblock corruption: a typed error at open, never a
            // store that serves garbage.
            Err(StoreError::CorruptPage { page, .. }) => prop_assert_eq!(page, target as u32),
            Err(StoreError::BadVersion(_)) => prop_assert_eq!(target, 0),
            Err(e) => panic!("unexpected open error {e}"),
            Ok(reopened) => {
                for k in 0..keys {
                    match reopened.get(k) {
                        Ok(Some(v)) => prop_assert_eq!(
                            v,
                            value_for(k, value_bytes),
                            "key {} returned wrong bytes",
                            k
                        ),
                        Ok(None) => panic!("preloaded key {k} vanished without an error"),
                        Err(StoreError::CorruptPage { .. }) => {} // typed, expected
                        Err(e) => panic!("untyped failure: {e}"),
                    }
                }
            }
        }
    }
}

/// Concurrent put/delete churn from 1, 2, and 8 sessions: afterwards the
/// free list must be duplicate-free and consistent with its count, and
/// every surviving key must read back exactly its own bytes (a double
/// allocation would splice one key's page into another's chain, which
/// the per-page key field and CRC would expose).
#[test]
fn free_list_never_double_allocates_under_concurrency() {
    for sessions in [1usize, 2, 8] {
        let dev = device(11 + sessions as u64);
        let store = PcmStore::format(
            dev,
            StoreConfig {
                dir_buckets: 8,
                stripes: 4,
            },
        )
        .unwrap();
        let keys_per_session = 6u64;
        let rounds = 25u64;

        std::thread::scope(|s| {
            for t in 0..sessions {
                let store = &store;
                s.spawn(move || {
                    let base = t as u64 * keys_per_session;
                    for round in 0..rounds {
                        for k in base..base + keys_per_session {
                            // Vary value size so chains grow and shrink,
                            // forcing constant free-list traffic.
                            let len = 20 + ((k + round) % 3) as usize * 44;
                            store.put(k, &value_for(k ^ round, len)).unwrap();
                            if (k + round) % 3 == 0 {
                                store.delete(k).unwrap();
                            }
                        }
                    }
                });
            }
        });

        let free = walk_free_list(&store);
        // Every key that survived the final round reads back its exact
        // final bytes; a cross-linked chain could not do this.
        let last = rounds - 1;
        for t in 0..sessions as u64 {
            for k in t * keys_per_session..(t + 1) * keys_per_session {
                let len = 20 + ((k + last) % 3) as usize * 44;
                match store.get(k).unwrap() {
                    Some(v) => {
                        assert!(
                            !(k + last).is_multiple_of(3),
                            "deleted key {k} still present"
                        );
                        assert_eq!(v, value_for(k ^ last, len), "key {k} cross-linked");
                    }
                    None => assert!((k + last).is_multiple_of(3), "live key {k} lost"),
                }
            }
        }
        // Nothing on the free list is reachable as live data: every
        // bucket page is fixed (1..=8) and not in the free set.
        for b in 1..=store.dir_buckets() {
            assert!(!free.contains(&b), "bucket page {b} leaked to free list");
        }
    }
}
