//! Integration tests for the bank-sharded concurrent engine, driven
//! through the `mlc_pcm` facade the way an application would use it:
//! many threads contending for the same shards, bulk batch paths, the
//! shared clock, and the typed error surface.

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::device::{CellOrganization, PcmDevice, PcmError, ShardedPcmDevice};

fn sharded(blocks: usize, banks: usize, seed: u64) -> ShardedPcmDevice {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(blocks)
        .banks(banks)
        .seed(seed)
        .build_sharded()
        .unwrap()
}

fn pattern(block: usize) -> Vec<u8> {
    (0..64).map(|i| (block * 31 + i) as u8).collect()
}

#[test]
fn contended_threads_share_banks_safely() {
    // 8 threads over 4 banks: every bank's mutex is contended by two
    // threads. Blocks are disjoint per thread, so after the join every
    // block must hold exactly what its writer stored.
    let dev = sharded(32, 4, 42);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let dev = &dev;
            scope.spawn(move || {
                let mut session = dev.session();
                for block in (t..32).step_by(8) {
                    session.write_block(block, &pattern(block)).unwrap();
                    assert_eq!(session.read_block(block).unwrap().data, pattern(block));
                }
            });
        }
    });
    for block in 0..32 {
        assert_eq!(dev.read_block(block).unwrap().data, pattern(block));
    }
    let stats = dev.stats();
    assert_eq!(stats.writes, 32);
    // 32 in-thread reads plus the 32 verification reads above.
    assert_eq!(stats.reads, 64);
}

#[test]
fn batch_paths_cross_banks_in_one_call() {
    let dev = sharded(16, 8, 7);
    // Submission order deliberately hops banks back and forth.
    let blocks: Vec<usize> = vec![15, 0, 9, 3, 8, 1, 14, 2];
    let payloads: Vec<Vec<u8>> = blocks.iter().map(|&b| pattern(b)).collect();
    let requests: Vec<(usize, &[u8])> = blocks
        .iter()
        .zip(&payloads)
        .map(|(&b, p)| (b, p.as_slice()))
        .collect();

    let mut session = dev.session();
    let write_reports = session.write_batch(&requests);
    assert_eq!(write_reports.len(), blocks.len());
    assert!(write_reports.iter().all(|r| r.is_ok()));
    let read_reports = session.read_batch(&blocks);
    // Results come back in submission order, not bank order.
    for (report, want) in read_reports.iter().zip(&payloads) {
        assert_eq!(&report.as_ref().unwrap().data, want);
    }
    assert_eq!(session.stats().writes, blocks.len() as u64);
    assert_eq!(session.stats().reads, blocks.len() as u64);
}

#[test]
fn out_of_range_blocks_yield_typed_errors() {
    let dev = sharded(8, 4, 1);
    match dev.read_block(8) {
        Err(PcmError::BlockOutOfRange { block, blocks }) => {
            assert_eq!((block, blocks), (8, 8));
        }
        other => panic!("expected BlockOutOfRange, got {other:?}"),
    }
    assert!(dev.write_block(100, &[0u8; 64]).is_err());
    // Batches report per-op results: the bad op fails, the rest of the
    // batch is unaffected.
    dev.write_block(0, &pattern(0)).unwrap();
    dev.write_block(1, &pattern(1)).unwrap();
    let results = dev.read_batch(&[0, 1, 99]);
    assert!(matches!(results[2], Err(PcmError::BlockOutOfRange { .. })));
    assert_eq!(results[0].as_ref().unwrap().data, pattern(0));
    assert_eq!(results[1].as_ref().unwrap().data, pattern(1));
}

#[test]
fn clock_is_shared_across_threads_and_shards() {
    let dev = sharded(8, 4, 3);
    dev.write_block(0, &pattern(0)).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let dev = &dev;
            scope.spawn(move || {
                for _ in 0..250 {
                    dev.advance_time(0.5);
                }
            });
        }
    });
    assert_eq!(dev.now(), 500.0);
    // Reads observe the advanced clock (drift), and still decode.
    assert_eq!(dev.read_block(0).unwrap().data, pattern(0));
}

#[test]
fn engines_convert_back_and_forth_without_losing_state() {
    let dev = sharded(8, 4, 99);
    for b in 0..8 {
        dev.write_block(b, &pattern(b)).unwrap();
    }
    dev.advance_time(3600.0);
    let stats = dev.stats();

    let mut seq: PcmDevice = dev.into();
    assert_eq!(seq.stats(), stats);
    seq.write_block(0, &pattern(7)).unwrap();

    let back: ShardedPcmDevice = seq.into();
    assert_eq!(back.read_block(0).unwrap().data, pattern(7));
    for b in 1..8 {
        assert_eq!(back.read_block(b).unwrap().data, pattern(b));
    }
    assert_eq!(back.stats().writes, stats.writes + 1);
}
