//! Integration tests for the wearout/endurance stack: mark-and-spare
//! (in-block) × FREE-p remapping (device) × Start-Gap wear leveling ×
//! the analytic lifetime model, plus the §8 generalized K-level block.

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::device::{
    CellOrganization, GenericBlock, PcmDevice, RemappedDevice, WearLeveledDevice,
};
use mlc_pcm::wearout::fault::EnduranceModel;
use mlc_pcm::wearout::lifetime;

fn weak(median: f64) -> EnduranceModel {
    EnduranceModel {
        median_cycles: median,
        ..EnduranceModel::mlc()
    }
}

fn weak_device(blocks: usize, banks: usize, seed: u64, median: f64) -> PcmDevice {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(blocks)
        .banks(banks)
        .seed(seed)
        .endurance(weak(median))
        .build()
        .unwrap()
}

#[test]
fn leveling_beats_no_leveling_under_hot_traffic() {
    let data = vec![0x42u8; 64];
    let budget = 100_000u64;

    let mut bare = weak_device(8, 1, 3, 1000.0);
    let mut bare_writes = 0;
    while bare_writes < budget && bare.write_block(0, &data).is_ok() {
        bare_writes += 1;
    }

    let mut leveled = WearLeveledDevice::new(weak_device(9, 1, 3, 1000.0), 8, 8);
    let mut leveled_writes = 0;
    while leveled_writes < budget && leveled.write_block(0, &data).is_ok() {
        leveled_writes += 1;
    }

    assert!(
        leveled_writes as f64 > 3.0 * bare_writes as f64,
        "leveling must multiply hot-spot lifetime: {leveled_writes} vs {bare_writes}"
    );
}

#[test]
fn remap_reserve_extends_life_proportionally() {
    let data = vec![0x24u8; 64];
    let run = |reserve: usize, seed: u64| -> u64 {
        let mut dev = RemappedDevice::new(weak_device(8 + reserve, 1, seed, 800.0), reserve);
        let mut writes = 0;
        while writes < 200_000 && dev.write_block(0, &data).is_ok() {
            writes += 1;
        }
        writes
    };
    let r0 = run(1, 5);
    let r4 = run(4, 5);
    assert!(
        r4 as f64 > 2.0 * r0 as f64,
        "4 reserve blocks must far outlive 1: {r4} vs {r0}"
    );
}

#[test]
fn leveled_device_data_integrity_to_the_end() {
    // Under leveling, *every* block's data must stay correct right up to
    // the first reported failure — no silent corruption on the way down.
    let pattern = |b: usize| -> Vec<u8> { vec![(b as u8) ^ 0x3C; 64] };
    let mut dev = WearLeveledDevice::new(weak_device(9, 1, 9, 700.0), 8, 4);
    for b in 0..8 {
        dev.write_block(b, &pattern(b)).unwrap();
    }
    let mut hot = 0u64;
    loop {
        if dev.write_block(2, &pattern(2)).is_err() {
            break;
        }
        hot += 1;
        if hot.is_multiple_of(257) {
            for b in 0..8 {
                let r = dev.read_block(b);
                if let Ok(rep) = r {
                    assert_eq!(rep.data, pattern(b), "block {b} after {hot} hot writes");
                }
            }
        }
        assert!(hot < 200_000, "weakened cells must eventually fail");
    }
    assert!(hot > 100, "some useful life before failure: {hot}");
}

#[test]
fn analytic_lifetime_brackets_simulation_across_endurance() {
    let data = vec![7u8; 64];
    for median in [600.0, 2000.0] {
        let mut dev = weak_device(4, 1, 13, median);
        let mut writes = 0u64;
        while writes < 300_000 && dev.write_block(0, &data).is_ok() {
            writes += 1;
        }
        let model = weak(median);
        let predicted = lifetime::block_lifetime_cycles(&model, 354, 6, 0.5);
        let ratio = writes as f64 / predicted;
        assert!(
            (0.2..5.0).contains(&ratio),
            "median {median}: measured {writes} vs predicted {predicted}"
        );
    }
}

#[test]
fn generic_five_level_block_integrates_with_array() {
    use mlc_pcm::codec::enumerative::EnumerativeCode;
    use mlc_pcm::core::params::StateLabel;
    // Five-level design with the tightened write spread from the §8
    // exploration.
    let nominals = [3.0, 3.75, 4.5, 5.25, 6.0];
    let labels = [
        StateLabel::S1,
        StateLabel::S2,
        StateLabel::S2,
        StateLabel::S3,
        StateLabel::S4,
    ];
    let states = labels
        .iter()
        .zip(nominals)
        .map(|(&label, nominal_logr)| mlc_pcm::core::LevelState {
            label,
            nominal_logr,
            occupancy: 0.2,
        })
        .collect();
    let thresholds: Vec<f64> = nominals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    let design = LevelDesign {
        name: "5LC".into(),
        states,
        thresholds,
        sigma_logr: 0.11,
        write_tolerance_sigma: 2.75,
        drift_switch: None,
    };
    design.validate().unwrap();

    let code = EnumerativeCode::new(5, 3);
    let mut blk = GenericBlock::new(design, code, 0, 4, 2);
    let mut arr = mlc_pcm::device::CellArray::new(blk.cells(), EnduranceModel::mlc(), 71);

    // Round-trip + short-horizon retention (five-level cells are dense
    // but volatile — the §8 frontier).
    let data: Vec<u8> = (0..64u32).map(|i| (i * 11 + 3) as u8).collect();
    blk.write(&mut arr, 0.0, &data).unwrap();
    assert_eq!(
        blk.read(&arr, 60.0).unwrap().data,
        data,
        "survives a minute"
    );
    assert!(blk.density() > 1.7, "worth it: {} bits/cell", blk.density());
}
