//! The telemetry determinism oracle.
//!
//! The `pcm-telemetry` contract mirrors the tracing one: per-bank
//! counters are a pure function of that bank's operation order, samples
//! are claimed on integer model-time ticks, and the sampling points are
//! quiesced `advance_time` calls — so the sequential engine and the
//! sharded engine at any thread count must export *byte-identical*
//! series JSONL for a fixed seed. And because the recorder only
//! observes, a telemetry-enabled device must walk the exact trajectory
//! of a telemetry-free one.

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::core::params::REFRESH_17MIN_SECS;
use mlc_pcm::device::{
    BankScrubCursor, CellOrganization, DriftRiskConfig, PcmDevice, RefreshController,
    ShardedScrubber, TelemetryConfig,
};
use mlc_pcm::store::workload::{run_phased, PhasedConfig, WorkloadConfig};
use mlc_pcm::store::{PcmStore, StoreConfig};
use mlc_pcm::telemetry::RiskState;

const BLOCKS: usize = 16;
const BANKS: usize = 4;
const ROUND: f64 = 1.6; // step lands on exact ns boundaries
const SAMPLE_NS: u64 = 400_000_000; // four telemetry ticks per round
const ROUNDS: usize = 3;

fn builder(seed: u64) -> mlc_pcm::device::DeviceBuilder {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(BLOCKS)
        .banks(BANKS)
        .seed(seed)
        .telemetry(TelemetryConfig::new(SAMPLE_NS).with_capacity(64))
}

fn payload(b: usize) -> Vec<u8> {
    vec![b as u8 ^ 0xA5; 64]
}

/// A fixed demand-op schedule: `(block, is_write)` per round, the same
/// list every run (the oracle compares engines, not workloads).
fn rounds() -> Vec<Vec<(usize, bool)>> {
    (0..ROUNDS)
        .map(|k| {
            (0..10)
                .map(|i| (((k * 7 + i * 3) % BLOCKS), i % 3 == 0))
                .collect()
        })
        .collect()
}

/// Sequential reference: preload, then per round advance + scrub +
/// demand ops. Returns the exported series document.
fn sequential_series(seed: u64) -> String {
    let mut dev = builder(seed).build().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &payload(b)).unwrap();
    }
    let mut ctl = RefreshController::new(ROUND);
    for (k, ops) in rounds().iter().enumerate() {
        let t = ROUND * (k + 1) as f64;
        dev.advance_time(t - dev.now());
        ctl.run_until(&mut dev, t);
        for &(block, is_write) in ops {
            if is_write {
                dev.write_block(block, &payload(block)).unwrap();
            } else {
                dev.read_block(block).unwrap();
            }
        }
    }
    dev.telemetry().unwrap().snapshot().to_jsonl()
}

/// The sharded run at `threads` threads: same schedule, banks
/// partitioned over scoped threads, telemetry sampled only from the
/// quiesced `advance_time` boundary.
fn sharded_series(seed: u64, threads: usize) -> String {
    let dev = builder(seed).build_sharded().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &payload(b)).unwrap();
    }
    let mut scrubber = ShardedScrubber::new(&dev, ROUND);
    for (k, ops) in rounds().iter().enumerate() {
        let t = ROUND * (k + 1) as f64;
        dev.advance_time(t - dev.now());
        let mut cursors = scrubber.bank_cursors();
        std::thread::scope(|scope| {
            let mut groups: Vec<Vec<&mut BankScrubCursor>> =
                (0..threads).map(|_| Vec::new()).collect();
            for cursor in cursors.iter_mut() {
                groups[cursor.bank() % threads].push(cursor);
            }
            for group in groups {
                let dev = &dev;
                scope.spawn(move || {
                    let mut session = dev.session();
                    let mut owned = Vec::new();
                    for cursor in group {
                        cursor.run_until(dev, t);
                        owned.push(cursor.bank());
                    }
                    for &(block, is_write) in ops {
                        if !owned.contains(&(block % BANKS)) {
                            continue;
                        }
                        if is_write {
                            session.write_block(block, &payload(block)).unwrap();
                        } else {
                            session.read_block(block).unwrap();
                        }
                    }
                });
            }
        });
        scrubber.adopt_cursors(&cursors);
    }
    dev.telemetry().unwrap().snapshot().to_jsonl()
}

#[test]
fn series_jsonl_is_byte_identical_across_engines_and_thread_counts() {
    let want = sequential_series(77);
    assert!(
        want.lines().count() > 1 + BANKS,
        "reference run must retain sample points:\n{want}"
    );
    // A fixed seed re-run is byte-identical…
    assert_eq!(sequential_series(77), want, "sequential run not stable");
    // …and so is the sharded engine at every thread count.
    for threads in [1usize, 2, 8] {
        assert_eq!(
            sharded_series(77, threads),
            want,
            "series diverge at threads={threads}"
        );
    }
    // The export round-trips through the parser bit-for-bit.
    let parsed = mlc_pcm::telemetry::parse(&want).unwrap();
    assert_eq!(parsed.per_bank.len(), BANKS);
    assert_eq!(parsed.to_jsonl(), want);
}

#[test]
fn telemetry_does_not_perturb_device_results() {
    // A telemetry-enabled device and a bare one walk identical
    // trajectories: the recorder observes, it never participates.
    let run = |enabled: bool| {
        let b = PcmDevice::builder()
            .organization(CellOrganization::ThreeLevel(
                LevelDesign::three_level_naive(),
            ))
            .blocks(BLOCKS)
            .banks(BANKS)
            .seed(5);
        let b = if enabled {
            b.telemetry(TelemetryConfig::new(SAMPLE_NS))
        } else {
            b
        };
        let mut dev = b.build().unwrap();
        for blk in 0..BLOCKS {
            dev.write_block(blk, &payload(blk)).unwrap();
        }
        let mut ctl = RefreshController::new(ROUND);
        dev.advance_time(2.0 * ROUND);
        ctl.run_until(&mut dev, 2.0 * ROUND);
        let data: Vec<Vec<u8>> = (0..BLOCKS)
            .map(|blk| dev.read_block(blk).unwrap().data)
            .collect();
        (data, dev.bank_stats(), dev.metrics().snapshot())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn obs_report_renders_risk_states_from_a_store_workload() {
    // The end-to-end sensing path the adaptive-scrub controller will
    // sit on: a real KV workload on a drift-prone 4LC store, phased so
    // model time (and drift) accrues between op slices, scrub correcting
    // drifted cells as it goes. The corrected-symbol flow must push the
    // risk estimator off Healthy, and `obs-report`'s analyzer must
    // render the per-bank risk states from the exported series.
    let store_cfg = StoreConfig {
        dir_buckets: 16,
        stripes: 4,
    };
    let cfg = WorkloadConfig {
        seed: 9,
        actors: 4,
        keys_per_actor: 32,
        ops_per_actor: 200,
        ..WorkloadConfig::default()
    };
    let banks = BANKS;
    let blocks = cfg.required_blocks(&store_cfg).div_ceil(banks) * banks;
    let interval_ns = (REFRESH_17MIN_SECS * 1e9) as u64; // exact: 1024 s
    let dev = PcmDevice::builder()
        .organization(CellOrganization::FourLevel {
            design: mlc_pcm::core::optimize::four_level_optimal().clone(),
            smart: true,
        })
        .blocks(blocks)
        .banks(banks)
        .seed(9)
        .telemetry(
            TelemetryConfig::new(interval_ns).with_risk(DriftRiskConfig {
                budget_per_interval: 4,
                ewma_shift: 1,
                elevated_permille: 100,
                critical_permille: 800,
            }),
        )
        .build_sharded()
        .unwrap();
    let store = PcmStore::format(dev, store_cfg).unwrap();
    let phased = PhasedConfig {
        phases: 4,
        advance_secs: REFRESH_17MIN_SECS,
        scrub_interval_secs: Some(REFRESH_17MIN_SECS),
    };
    let report = run_phased(&store, &cfg, &phased, 2).unwrap();
    assert_eq!(report.totals.mismatches, 0, "store integrity");

    let snap = store.device().telemetry().unwrap().snapshot();
    let corrected: u64 = snap
        .per_bank
        .iter()
        .flat_map(|b| b.points.iter())
        .map(|p| p.corrected_symbols)
        .sum();
    assert!(corrected > 0, "4LC drift must exercise the ECC path");
    assert!(
        snap.per_bank.iter().any(|b| b.risk != RiskState::Healthy),
        "corrected-symbol flow must move some bank off Healthy"
    );

    let doc = snap.to_jsonl();
    let obs = mlc_pcm::telemetry::report::analyze_str(&doc, banks).unwrap();
    let text = obs.render_text();
    assert!(
        text.contains("top risk banks"),
        "risk table missing:\n{text}"
    );
    assert!(
        text.contains("elevated") || text.contains("critical"),
        "non-healthy risk state must be rendered:\n{text}"
    );
}
