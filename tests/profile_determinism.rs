//! The causal-profiling determinism oracle (DESIGN.md §17).
//!
//! Three contracts on top of the tracing oracle:
//!
//! 1. **Attribution is engine- and thread-count-invariant.** Correlation
//!    ids come from split counters (per stream), so the profile built
//!    from a sequential run and from sharded runs at 1/2/8 threads —
//!    same per-bank op order — must export byte-identical folded stacks
//!    and profile JSONL.
//! 2. **Observation is free.** A device driven through the `*_ctx` ops
//!    with tracing enabled walks the identical trajectory (data, stats,
//!    metrics) as one driven without tracing: the ctx plumbing and the
//!    scrub-debt stall model never touch device state.
//! 3. **Buckets partition exactly.** On a phased YCSB-B store workload
//!    with background scrub, every request's named buckets sum to its
//!    span duration in integer ns with zero residual, and scrub
//!    interference is actually attributed (nonzero stall somewhere).

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::device::{
    BankScrubCursor, CellOrganization, DeviceBuilder, PcmDevice, RefreshController,
    ShardedScrubber, TelemetryConfig, TraceConfig,
};
use mlc_pcm::sim::profile;
use mlc_pcm::store::workload::{run_phased, Mix, PhasedConfig, WorkloadConfig};
use mlc_pcm::store::{PcmStore, StoreConfig};
use mlc_pcm::trace::{jsonl, pack_ctx, CtxClass, OpKind};

const BLOCKS: usize = 16;
const BANKS: usize = 4;
const INTERVAL: f64 = 1.6;
const SEED: u64 = 42;

fn builder(seed: u64) -> DeviceBuilder {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(BLOCKS)
        .banks(BANKS)
        .seed(seed)
        .trace(TraceConfig::new(4096))
}

fn payload(b: usize) -> Vec<u8> {
    vec![b as u8 ^ 0x5A; 64]
}

/// The fixed demand schedule: three scrubbed rounds of mixed ops over
/// every block, each op pre-assigned a request ctx from per-bank split
/// counters — the id depends only on the op's position in its bank's
/// stream, never on which thread issues it.
fn rounds_with_ctx() -> Vec<Vec<(usize, bool, u64)>> {
    let mut seq = [0u32; BANKS];
    (0..3usize)
        .map(|round| {
            (0..BLOCKS)
                .map(|block| {
                    let bank = block % BANKS;
                    let ctx = pack_ctx(CtxClass::Kv, bank as u64 + 1, seq[bank]);
                    seq[bank] += 1;
                    (block, (block + round) % 3 == 0, ctx)
                })
                .collect()
        })
        .collect()
}

/// Sequential reference: preload, then per round scrub via the
/// `RefreshController` and apply the ctx-carrying demand ops.
fn sequential_trace(seed: u64, rounds: &[Vec<(usize, bool, u64)>]) -> String {
    let mut dev = builder(seed).build().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &payload(b)).unwrap();
    }
    let mut ctl = RefreshController::new(INTERVAL);
    for (k, ops) in rounds.iter().enumerate() {
        let t = INTERVAL * (k + 1) as f64;
        dev.advance_time(t - dev.now());
        ctl.run_until(&mut dev, t);
        for &(block, is_write, ctx) in ops {
            if is_write {
                dev.write_block_ctx(block, &payload(block), ctx).unwrap();
            } else {
                dev.read_block_ctx(block, ctx).unwrap();
            }
        }
    }
    jsonl::export(&dev.tracer().buffer().unwrap().snapshot())
}

/// The sharded run at `threads` threads: each thread owns a set of
/// banks and drives their scrub cursors then their demand ops, in the
/// same per-bank order as the sequential reference.
fn sharded_trace(seed: u64, rounds: &[Vec<(usize, bool, u64)>], threads: usize) -> String {
    let dev = builder(seed).build_sharded().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &payload(b)).unwrap();
    }
    let mut scrubber = ShardedScrubber::new(&dev, INTERVAL);
    for (k, ops) in rounds.iter().enumerate() {
        let t = INTERVAL * (k + 1) as f64;
        dev.advance_time(t - dev.now());
        let mut cursors = scrubber.bank_cursors();
        std::thread::scope(|scope| {
            let mut groups: Vec<Vec<&mut BankScrubCursor>> =
                (0..threads).map(|_| Vec::new()).collect();
            for cursor in cursors.iter_mut() {
                groups[cursor.bank() % threads].push(cursor);
            }
            for group in groups {
                let dev = &dev;
                scope.spawn(move || {
                    let mut owned = Vec::new();
                    for cursor in group {
                        cursor.run_until(dev, t);
                        owned.push(cursor.bank());
                    }
                    for &(block, is_write, ctx) in ops {
                        if !owned.contains(&(block % BANKS)) {
                            continue;
                        }
                        if is_write {
                            dev.write_block_ctx(block, &payload(block), ctx).unwrap();
                        } else {
                            dev.read_block_ctx(block, ctx).unwrap();
                        }
                    }
                });
            }
        });
        scrubber.adopt_cursors(&cursors);
    }
    jsonl::export(&dev.tracer().buffer().unwrap().snapshot())
}

/// Every request's buckets must sum to its duration exactly — integer
/// ns, no residual, no overrun.
fn assert_exact_partition(p: &profile::Profile) {
    for r in &p.requests {
        let b = &r.buckets;
        assert_eq!(
            b.media_ns + b.ecc_ns + b.alloc_index_ns + b.scrub_wait_ns + b.queue_wait_ns,
            r.duration_ns,
            "buckets must partition the span: {r:?}"
        );
        assert_eq!(b.overrun_ns, 0, "no request may overrun its span: {r:?}");
    }
}

#[test]
fn attribution_is_identical_sequential_vs_sharded() {
    let rounds = rounds_with_ctx();
    let want_doc = sequential_trace(SEED, &rounds);
    let want = profile::build(&want_doc).unwrap();
    assert!(
        want.requests.len() >= BLOCKS,
        "reference run must attribute something"
    );
    assert_eq!(want.orphan_events, 0);
    assert_exact_partition(&want);
    let (want_folded, want_jsonl) = (want.to_folded(), want.to_jsonl());
    assert!(!want_folded.is_empty());
    for threads in [1usize, 2, 8] {
        let got = profile::build(&sharded_trace(SEED, &rounds, threads)).unwrap();
        assert_eq!(
            got.to_folded(),
            want_folded,
            "folded stacks diverge at threads={threads}"
        );
        assert_eq!(
            got.to_jsonl(),
            want_jsonl,
            "profile JSONL diverges at threads={threads}"
        );
    }
}

#[test]
fn ctx_ops_do_not_perturb_device_results() {
    // The same ctx-op trajectory on a traced and an untraced device
    // must agree bit for bit: ctx plumbing and the scrub-debt stall
    // model are observation, not simulation.
    let rounds = rounds_with_ctx();
    let run = |traced: bool| {
        let b = PcmDevice::builder()
            .organization(CellOrganization::ThreeLevel(
                LevelDesign::three_level_naive(),
            ))
            .blocks(BLOCKS)
            .banks(BANKS)
            .seed(5);
        let b = if traced {
            b.trace(TraceConfig::new(4096))
        } else {
            b
        };
        let mut dev = b.build().unwrap();
        for blk in 0..BLOCKS {
            dev.write_block(blk, &payload(blk)).unwrap();
        }
        let mut ctl = RefreshController::new(INTERVAL);
        for (k, ops) in rounds.iter().enumerate() {
            let t = INTERVAL * (k + 1) as f64;
            dev.advance_time(t - dev.now());
            ctl.run_until(&mut dev, t);
            for &(block, is_write, ctx) in ops {
                if is_write {
                    dev.write_block_ctx(block, &payload(block), ctx).unwrap();
                } else {
                    dev.read_block_ctx(block, ctx).unwrap();
                }
            }
        }
        let data: Vec<Vec<u8>> = (0..BLOCKS)
            .map(|blk| dev.read_block(blk).unwrap().data)
            .collect();
        (data, dev.bank_stats(), dev.metrics().snapshot())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn phased_ycsb_b_attributes_scrub_interference_exactly() {
    // The bench's observability pass in miniature: YCSB-B slices
    // interleaved with model-time advances and background scrub, on a
    // traced store. Scrub debt must surface as nonzero scrub_wait on
    // stalled requests, and every request must still partition exactly.
    let cfg = WorkloadConfig {
        seed: SEED,
        actors: 2,
        keys_per_actor: 40,
        ops_per_actor: 200,
        mix: Mix::YCSB_B,
        ..WorkloadConfig::default()
    };
    let store_cfg = StoreConfig {
        dir_buckets: 64,
        stripes: 16,
    };
    let banks = 8;
    let blocks = cfg.required_blocks(&store_cfg).div_ceil(banks) * banks;
    let dev = DeviceBuilder::new()
        .blocks(blocks)
        .banks(banks)
        .seed(cfg.seed)
        .telemetry(TelemetryConfig::new(25_000_000))
        .trace(TraceConfig::new(1 << 16))
        .build_sharded()
        .unwrap();
    let store = PcmStore::format(dev, store_cfg).unwrap();
    let phased = PhasedConfig {
        phases: 8,
        advance_secs: 0.025,
        scrub_interval_secs: Some(0.005),
    };
    run_phased(&store, &cfg, &phased, 2).unwrap();

    let doc = jsonl::export(&store.device().tracer().buffer().unwrap().snapshot());
    let p = profile::build(&doc).unwrap();
    assert!(p.requests.len() > 100, "expected a populated profile");
    assert_eq!(p.orphan_events, 0, "trace ring must not wrap");
    assert_exact_partition(&p);

    let kv = |k: OpKind| matches!(k, OpKind::KvGet | OpKind::KvPut | OpKind::KvDelete);
    let stalled_kv: u64 = p
        .requests
        .iter()
        .filter(|r| kv(r.kind))
        .map(|r| r.buckets.scrub_wait_ns)
        .sum();
    assert!(
        stalled_kv > 0,
        "background scrub must interfere with some KV request"
    );
    // KV roots are modeled spans: their duration IS the sum of their
    // device work, so they carry no queue slack at all.
    for r in p.requests.iter().filter(|r| kv(r.kind)) {
        assert_eq!(r.buckets.queue_wait_ns, 0, "KV spans are exact: {r:?}");
    }
    // The interference rollup agrees with the per-request view.
    let rollup: u64 = p.scrub_interference().iter().map(|&(_, _, ns)| ns).sum();
    let per_request: u64 = p.requests.iter().map(|r| r.buckets.scrub_wait_ns).sum();
    assert_eq!(rollup, per_request);
    // And the export round-trips byte-stably.
    let jsonl_doc = p.to_jsonl();
    assert_eq!(profile::parse(&jsonl_doc).unwrap().to_jsonl(), jsonl_doc);
}
