//! Property-based tests (proptest) over the cross-crate invariants:
//! codec round-trips, ECC correction guarantees, wearout-tolerance
//! closure, drift-model laws, and device read-after-write identity.

use mlc_pcm::codec::{enumerative::EnumerativeCode, gray, permutation, three_on_two};
use mlc_pcm::core::drift::DriftTrajectory;
use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::core::math::special as sf;
use mlc_pcm::ecc::{bch::Bch, bitvec::BitVec, Hamming, HammingOutcome};
use mlc_pcm::wearout::mark_spare::MarkSpareCodec;
use proptest::collection::vec;
use proptest::prelude::*;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    vec(any::<bool>(), len).prop_map(|bools| BitVec::from_bools(&bools))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- codecs ----------------

    #[test]
    fn three_on_two_roundtrip(data in bitvec_strategy(512)) {
        let trits = three_on_two::encode_block(&data);
        prop_assert_eq!(trits.len(), 342);
        let (decoded, inv) = three_on_two::decode_block(&trits, 512);
        prop_assert_eq!(decoded, data);
        prop_assert!(inv.iter().all(|&f| !f));
    }

    #[test]
    fn gray_roundtrip_and_single_bit_property(data in bitvec_strategy(512), cell in 0usize..256) {
        let mut states = gray::encode_block(&data);
        prop_assert_eq!(gray::decode_block(&states, 512), data.clone());
        // A one-step drift error flips exactly one decoded bit.
        if states[cell] < 3 {
            states[cell] += 1;
            let corrupted = gray::decode_block(&states, 512);
            prop_assert_eq!(corrupted.hamming_distance(&data), 1);
        }
    }

    #[test]
    fn smart_encode_is_invertible(states in vec(0usize..4, 256)) {
        let mut transformed = states.clone();
        let tag = mlc_pcm::codec::smart::encode_block(&mut transformed);
        mlc_pcm::codec::smart::decode_block(&mut transformed, tag);
        prop_assert_eq!(transformed, states);
    }

    #[test]
    fn permutation_rank_unrank(v in 0u16..2048) {
        let perm = permutation::encode(v);
        prop_assert_eq!(permutation::rank(&perm), Ok(v));
        // Analog decode of exact levels agrees.
        let levels: Vec<f64> = perm.iter().map(|&r| 3.0 + 0.45 * r as f64).collect();
        let arr: [f64; 7] = levels.try_into().unwrap();
        prop_assert_eq!(permutation::decode_analog(&arr), Ok(v));
    }

    #[test]
    fn enumerative_roundtrip(base in 3u8..=6, data in bitvec_strategy(128)) {
        let code = EnumerativeCode::new(base, 4);
        let symbols = code.encode_block(&data);
        prop_assert_eq!(code.decode_block(&symbols, 128), Some(data));
    }

    // ---------------- ECC ----------------

    #[test]
    fn bch_corrects_any_pattern_up_to_t(
        data in bitvec_strategy(512),
        flips in proptest::collection::btree_set(0usize..612, 0..=5),
    ) {
        let bch = Bch::new(10, 5);
        let parity = bch.encode(&data);
        let pb = bch.parity_bits(); // 50 for t = 5
        let mut d = data.clone();
        let mut p = parity.clone();
        let flips: std::collections::BTreeSet<usize> =
            flips.into_iter().map(|e| e % (pb + 512)).collect();
        for &e in &flips {
            if e < pb { p.toggle(e); } else { d.toggle(e - pb); }
        }
        let n = bch.decode(&mut d, &mut p).unwrap();
        prop_assert_eq!(n, flips.len());
        prop_assert_eq!(d, data);
        prop_assert_eq!(p, parity);
    }

    #[test]
    fn bch_never_silently_corrupts_with_double_t(
        data in bitvec_strategy(256),
        flips in proptest::collection::btree_set(0usize..276, 4..=4),
    ) {
        // t = 2 code facing 4 errors: either detected or corrected onto a
        // *valid* codeword (classic miscorrection); re-encoding the
        // decoder's output must then be self-consistent.
        let bch = Bch::new(10, 2);
        let parity = bch.encode(&data);
        let mut d = data.clone();
        let mut p = parity.clone();
        for &e in &flips {
            if e < 20 { p.toggle(e); } else { d.toggle(e - 20); }
        }
        if bch.decode(&mut d, &mut p).is_ok() {
            prop_assert_eq!(bch.encode(&d), p, "decoder output must be a codeword");
        }
    }

    #[test]
    fn sliced_transpose_roundtrips_batches(
        rows in vec(vec(any::<bool>(), 120), 1..=64),
    ) {
        // Position-major transpose must invert exactly for any lane count
        // up to 64 at a non-word-aligned width, and the planes must agree
        // bit-for-bit with the lane-major originals.
        use mlc_pcm::ecc::sliced::SlicedBatch;
        let lanes: Vec<BitVec> = rows.iter().map(|r| BitVec::from_bools(r)).collect();
        let batch = SlicedBatch::from_lanes(&lanes);
        prop_assert_eq!(batch.to_lanes(), lanes.clone());
        for (l, lane) in lanes.iter().enumerate() {
            for e in 0..lane.len() {
                prop_assert_eq!(batch.planes()[e] >> l & 1 == 1, lane.get(e));
            }
        }
    }

    #[test]
    fn sliced_decode_matches_scalar_at_any_grouping(
        data in vec(bitvec_strategy(128), 8),
        flips in vec(proptest::collection::btree_set(0usize..168, 0..=6), 8),
    ) {
        // decode_batch == scalar decode — results AND corrected bits —
        // no matter how the 8 lanes are grouped into batch calls
        // (1, 2, or 8 lanes per call). Error weights 0..=6 straddle the
        // t = 4 capacity, so both success and failure paths are compared.
        let bch = Bch::new(10, 4);
        let pb = bch.parity_bits(); // 40
        let mut noisy_d = Vec::new();
        let mut noisy_p = Vec::new();
        for (d, f) in data.iter().zip(&flips) {
            let mut dd = d.clone();
            let mut pp = bch.encode(d);
            for &e in f {
                if e < pb { pp.toggle(e); } else { dd.toggle(e - pb); }
            }
            noisy_d.push(dd);
            noisy_p.push(pp);
        }
        // Scalar oracle.
        let mut want_d = noisy_d.clone();
        let mut want_p = noisy_p.clone();
        let want: Vec<_> = want_d
            .iter_mut()
            .zip(want_p.iter_mut())
            .map(|(d, p)| bch.decode(d, p))
            .collect();
        for group in [1usize, 2, 8] {
            let mut got_d = noisy_d.clone();
            let mut got_p = noisy_p.clone();
            let mut got = Vec::new();
            for (dc, pc) in got_d.chunks_mut(group).zip(got_p.chunks_mut(group)) {
                got.extend(bch.decode_batch(dc, pc));
            }
            prop_assert_eq!(&got, &want, "results at group={}", group);
            prop_assert_eq!(&got_d, &want_d, "data at group={}", group);
            prop_assert_eq!(&got_p, &want_p, "parity at group={}", group);
        }
    }

    #[test]
    fn hamming_corrects_any_single_error(
        data in bitvec_strategy(708),
        flip in 0usize..718,
    ) {
        let h = Hamming::new(708);
        let checks = h.encode(&data);
        let mut d = data.clone();
        let mut c = checks.clone();
        if flip < 708 { d.toggle(flip); } else { c.toggle(flip - 708); }
        prop_assert_eq!(h.decode(&mut d, &mut c), HammingOutcome::Corrected);
        prop_assert_eq!(d, data);
    }

    // ---------------- wearout ----------------

    #[test]
    fn mark_spare_tolerates_any_failure_placement(
        values in vec(0u8..8, 171),
        failed in proptest::collection::btree_set(0usize..177, 0..=6),
    ) {
        let codec = MarkSpareCodec::default();
        let failed: Vec<usize> = failed.into_iter().collect();
        let pairs = codec.encode_pairs(&values, &failed).unwrap();
        prop_assert_eq!(codec.decode_pairs(&pairs).unwrap(), values.clone());
        prop_assert_eq!(codec.decode_pairs_staged(&pairs).unwrap(), values);
    }

    #[test]
    fn start_gap_translation_stays_bijective(
        n in 2usize..40,
        moves in 0usize..300,
    ) {
        use mlc_pcm::device::StartGap;
        let mut sg = StartGap::new(n, 1);
        for _ in 0..moves {
            sg.note_write().expect("psi = 1 always moves");
            sg.complete_move();
        }
        let mut seen = std::collections::BTreeSet::new();
        for la in 0..n {
            let pa = sg.translate(la);
            prop_assert!(pa <= n);
            prop_assert!(pa != sg.gap());
            prop_assert!(seen.insert(pa), "collision at {pa}");
        }
    }

    #[test]
    fn trace_files_roundtrip_ops(
        records in vec((1u64..1_000_000, any::<bool>(), 0u64..1u64 << 40), 0..50),
    ) {
        use mlc_pcm::sim::FileTrace;
        let mut sorted = records;
        sorted.sort_by_key(|r| r.0);
        let text: String = sorted
            .iter()
            .map(|(i, w, a)| format!("{i} {} {a}\n", if *w { "W" } else { "R" }))
            .collect();
        let trace = FileTrace::parse(&text, 4096).unwrap();
        prop_assert_eq!(trace.len(), sorted.len());
        for (op, (_, w, a)) in trace.ops().iter().zip(&sorted) {
            prop_assert_eq!(op.is_write, *w);
            prop_assert_eq!(op.block, (a / 64) % 4096);
        }
        // Strictly increasing instruction counts.
        for w in trace.ops().windows(2) {
            prop_assert!(w[1].at_instruction > w[0].at_instruction);
        }
    }

    #[test]
    fn prefix_or_networks_agree(inputs in vec(any::<bool>(), 1..200)) {
        use mlc_pcm::wearout::PrefixOrNetwork;
        let n = inputs.len();
        let r = PrefixOrNetwork::ripple(n).evaluate(&inputs);
        let s = PrefixOrNetwork::sklansky(n).evaluate(&inputs);
        let k = PrefixOrNetwork::kogge_stone(n).evaluate(&inputs);
        prop_assert_eq!(&r, &s);
        prop_assert_eq!(&r, &k);
    }

    // ---------------- drift model ----------------

    #[test]
    fn drift_is_monotone_for_nonnegative_alpha(
        logr0 in 3.0f64..6.0,
        alpha in 0.0f64..0.2,
        t1 in 1.0f64..1e10,
        factor in 1.0f64..1e5,
    ) {
        let tr = DriftTrajectory::simple(logr0, alpha);
        prop_assert!(tr.logr_at(t1 * factor) >= tr.logr_at(t1) - 1e-12);
    }

    #[test]
    fn drift_switch_only_accelerates(
        logr0 in 3.5f64..4.45,
        alpha1 in 0.001f64..0.05,
        alpha2 in 0.06f64..0.2,
        t in 1.0f64..1e12,
    ) {
        let plain = DriftTrajectory::simple(logr0, alpha1);
        let switched = DriftTrajectory::with_switch(logr0, alpha1, 4.5, alpha2);
        prop_assert!(switched.logr_at(t) >= plain.logr_at(t) - 1e-12);
    }

    #[test]
    fn sense_is_order_preserving(
        a in 2.5f64..6.5,
        b in 2.5f64..6.5,
    ) {
        let d = LevelDesign::four_level_naive();
        if a <= b {
            prop_assert!(d.sense(a) <= d.sense(b));
        } else {
            prop_assert!(d.sense(a) >= d.sense(b));
        }
    }

    // ---------------- numerics ----------------

    #[test]
    fn binomial_sf_bounds_and_monotonicity(
        n in 1u64..600,
        k in 0u64..20,
        p in 0.0f64..1.0,
    ) {
        let s = sf::binomial_sf(n, k, p);
        prop_assert!((0.0..=1.0).contains(&s));
        if k + 1 < n {
            prop_assert!(sf::binomial_sf(n, k + 1, p) <= s + 1e-12);
        }
    }

    #[test]
    fn normal_cdf_is_a_cdf(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(sf::normal_cdf(lo) <= sf::normal_cdf(hi) + 1e-15);
        prop_assert!(sf::normal_cdf(lo) >= 0.0 && sf::normal_cdf(hi) <= 1.0);
    }
}

proptest! {
    // Device round-trips are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn device_read_after_write_identity(
        payloads in vec(vec(any::<u8>(), 64), 4),
        age_days in 0u32..3650,
    ) {
        use mlc_pcm::device::{CellOrganization, PcmDevice};
        let mut dev = PcmDevice::builder()
            .organization(CellOrganization::ThreeLevel(LevelDesign::three_level_naive()))
            .blocks(4)
            .banks(4)
            .seed(9)
            .build()
            .unwrap();
        for (b, p) in payloads.iter().enumerate() {
            dev.write_block(b, p).unwrap();
        }
        dev.advance_time(age_days as f64 * 86_400.0);
        for (b, p) in payloads.iter().enumerate() {
            prop_assert_eq!(&dev.read_block(b).unwrap().data, p);
        }
    }

    #[test]
    fn sharded_engine_matches_sequential_at_any_thread_count(
        seed in 0u64..1000,
        payloads in vec(vec(any::<u8>(), 64), 8),
        ops in vec((0usize..8, any::<bool>()), 0..40),
    ) {
        // The determinism guarantee: a bank's outcomes are a pure
        // function of its op sequence, so as long as per-bank order is
        // preserved, data AND stats are bit-identical to the sequential
        // engine no matter how many threads drive the shards.
        use mlc_pcm::device::{CellOrganization, PcmDevice};
        const BLOCKS: usize = 8;
        const BANKS: usize = 4;
        let build = || {
            PcmDevice::builder()
                .organization(CellOrganization::ThreeLevel(
                    LevelDesign::three_level_naive(),
                ))
                .blocks(BLOCKS)
                .banks(BANKS)
                .seed(seed)
        };

        // Sequential reference run.
        let mut seq = build().build().unwrap();
        for (b, p) in payloads.iter().enumerate() {
            seq.write_block(b, p).unwrap();
        }
        for &(block, is_write) in &ops {
            if is_write {
                seq.write_block(block, &payloads[block]).unwrap();
            } else {
                seq.read_block(block).unwrap();
            }
        }
        let seq_stats = seq.bank_stats();
        let seq_data: Vec<Vec<u8>> =
            (0..BLOCKS).map(|b| seq.read_block(b).unwrap().data).collect();

        for threads in [1usize, 2, 8] {
            let dev = build().build_sharded().unwrap();
            // Thread t owns banks t, t+threads, … — disjoint ownership
            // keeps each bank's op order identical to the sequential run.
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let payloads = &payloads;
                    let ops = &ops;
                    let dev = &dev;
                    scope.spawn(move || {
                        let mut session = dev.session();
                        let owns = |block: usize| block % BANKS % threads == t;
                        for (b, p) in payloads.iter().enumerate() {
                            if owns(b) {
                                session.write_block(b, p).unwrap();
                            }
                        }
                        for &(block, is_write) in ops {
                            if !owns(block) {
                                continue;
                            }
                            if is_write {
                                session.write_block(block, &payloads[block]).unwrap();
                            } else {
                                session.read_block(block).unwrap();
                            }
                        }
                    });
                }
            });
            prop_assert_eq!(&dev.bank_stats(), &seq_stats, "stats, threads={}", threads);
            for (b, want) in seq_data.iter().enumerate() {
                prop_assert_eq!(
                    &dev.read_block(b).unwrap().data,
                    want,
                    "block {} at threads={}", b, threads
                );
            }
        }
    }

    #[test]
    fn concurrent_scrub_matches_sequential_refresh_path(
        seed in 0u64..1000,
        rounds in vec(vec((0usize..16, any::<bool>()), 0..12), 1..4),
    ) {
        // The tentpole determinism rule: scrub-by-cursor on the sharded
        // engine, interleaved with demand sessions, is bit-identical to
        // the sequential RefreshController-then-demand path whenever the
        // per-bank order of operations matches — here, each round does
        // that bank's due scrubs first, then its demand ops in list
        // order, exactly like the sequential reference.
        use mlc_pcm::device::{
            BankScrubCursor, CellOrganization, PcmDevice, RefreshController, ShardedScrubber,
        };
        const BLOCKS: usize = 16;
        const BANKS: usize = 4;
        const INTERVAL: f64 = 1.6; // step = 0.1 s: boundaries are exact
        let build = || {
            PcmDevice::builder()
                .organization(CellOrganization::ThreeLevel(
                    LevelDesign::three_level_naive(),
                ))
                .blocks(BLOCKS)
                .banks(BANKS)
                .seed(seed)
        };
        let payload = |b: usize| vec![b as u8 ^ 0x5A; 64];

        // Sequential reference: controller scrubs, then demand ops.
        let mut seq = build().build().unwrap();
        for b in 0..BLOCKS {
            seq.write_block(b, &payload(b)).unwrap();
        }
        let mut ctl = RefreshController::new(INTERVAL);
        for (k, ops) in rounds.iter().enumerate() {
            let t = INTERVAL * (k + 1) as f64;
            seq.advance_time(t - seq.now());
            ctl.run_until(&mut seq, t);
            for &(block, is_write) in ops {
                if is_write {
                    seq.write_block(block, &payload(block)).unwrap();
                } else {
                    seq.read_block(block).unwrap();
                }
            }
        }
        let seq_stats = seq.bank_stats();
        let seq_metrics = seq.metrics().snapshot();
        let seq_data: Vec<Vec<u8>> =
            (0..BLOCKS).map(|b| seq.read_block(b).unwrap().data).collect();

        for threads in [1usize, 2, 8] {
            let dev = build().build_sharded().unwrap();
            for b in 0..BLOCKS {
                dev.write_block(b, &payload(b)).unwrap();
            }
            let mut scrubber = ShardedScrubber::new(&dev, INTERVAL);
            for (k, ops) in rounds.iter().enumerate() {
                let t = INTERVAL * (k + 1) as f64;
                dev.advance_time(t - dev.now());
                let mut cursors = scrubber.bank_cursors();
                std::thread::scope(|scope| {
                    let mut groups: Vec<Vec<&mut BankScrubCursor>> =
                        (0..threads).map(|_| Vec::new()).collect();
                    for cursor in cursors.iter_mut() {
                        groups[cursor.bank() % threads].push(cursor);
                    }
                    for group in groups {
                        let dev = &dev;
                        scope.spawn(move || {
                            let mut session = dev.session();
                            let mut owned = Vec::new();
                            for cursor in group {
                                cursor.run_until(dev, t);
                                owned.push(cursor.bank());
                            }
                            for &(block, is_write) in ops {
                                if !owned.contains(&(block % BANKS)) {
                                    continue;
                                }
                                if is_write {
                                    session.write_block(block, &payload(block)).unwrap();
                                } else {
                                    session.read_block(block).unwrap();
                                }
                            }
                        });
                    }
                });
                scrubber.adopt_cursors(&cursors);
            }
            prop_assert_eq!(&dev.bank_stats(), &seq_stats, "stats, threads={}", threads);
            prop_assert_eq!(
                &dev.metrics().snapshot(),
                &seq_metrics,
                "metrics, threads={}",
                threads
            );
            for (b, want) in seq_data.iter().enumerate() {
                prop_assert_eq!(
                    &dev.read_block(b).unwrap().data,
                    want,
                    "block {} at threads={}", b, threads
                );
            }
        }
    }
}
