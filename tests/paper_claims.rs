//! The paper's headline claims, asserted end-to-end across crates.
//! Each test names the section it reproduces.

use mlc_pcm::core::cer::{AnalyticCer, CerEstimator, MonteCarloCer};
use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::core::params::{DeviceGeometry, REFRESH_17MIN_SECS, TEN_YEARS_SECS};
use mlc_pcm::core::{bler, optimize, retention};

/// §2.4 / Figure 3: S3 dominates drift errors in 4LCn, roughly an order
/// of magnitude above S2; S1 and S4 are practically immune.
#[test]
fn claim_s3_dominates() {
    let est = AnalyticCer::default();
    let d = LevelDesign::four_level_naive();
    let per = est.per_state_cer(&d, REFRESH_17MIN_SECS);
    assert!(
        per[2] > 5.0 * per[1],
        "S3 {:.2e} vs S2 {:.2e}",
        per[2],
        per[1]
    );
    assert!(per[0] < per[1] * 1e-3, "S1 must be negligible");
    assert_eq!(per[3], 0.0, "S4 cannot drift upward");
}

/// §5.3: 4LCn is unusable (CER ~1e-2 at 17 min), 4LCo reaches ~1e-3 —
/// feasible with BCH-10 at exactly the paper's 1.20e-14 target — and the
/// 3LC designs sit many orders of magnitude lower.
#[test]
fn claim_figure8_ordering_and_anchors() {
    let est = AnalyticCer::default();
    let t = REFRESH_17MIN_SECS;
    let n4 = est.cer(&LevelDesign::four_level_naive(), t);
    let s4 = est.cer(&LevelDesign::four_level_smart(), t);
    let o4 = est.cer(optimize::four_level_optimal(), t);
    let n3 = est.cer(&LevelDesign::three_level_naive(), t);
    let o3 = est.cer(optimize::three_level_optimal(), t);
    assert!(n4 > 5e-3, "4LCn ≈ 1e-2: {n4:e}");
    assert!(s4 < n4 && o4 < s4, "ordering 4LCn > 4LCs > 4LCo");
    assert!((2e-4..4e-3).contains(&o4), "4LCo ≈ 1e-3: {o4:e}");
    assert!(n3 < o4 * 1e-6, "3LCn orders below 4LCo: {n3:e}");
    assert!(o3 <= n3, "3LCo at least as good as 3LCn");

    let g = DeviceGeometry::default();
    let target = g.target_bler_per_period(t, TEN_YEARS_SECS);
    assert!((1.1e-14..1.3e-14).contains(&target), "the 1.20e-14 line");
    let bler10 = bler::block_error_rate(o4, 10, bler::FOUR_LEVEL_DATA_CELLS);
    assert!(bler10 <= target, "BCH-10 meets it: {bler10:e}");
}

/// §5.3 / abstract: 3LC retains data for more than ten years — with
/// BCH-1 as a safety net it meets the one-bad-block-per-device goal with
/// no refresh at all; 4LC cannot, even with very strong ECC.
#[test]
fn claim_nonvolatility() {
    let est = AnalyticCer::default();
    let g = DeviceGeometry::default();
    for d in [
        LevelDesign::three_level_naive(),
        optimize::three_level_optimal().clone(),
    ] {
        assert!(
            retention::is_nonvolatile(&d, &est, 1, 364, &g, TEN_YEARS_SECS),
            "{} must be nonvolatile",
            d.name
        );
    }
    assert!(!retention::is_nonvolatile(
        optimize::four_level_optimal(),
        &est,
        16,
        bler::FOUR_LEVEL_DATA_CELLS,
        &g,
        TEN_YEARS_SECS
    ));
}

/// §5.3: 3LCo stays below CER 1e-8 out to ~68 years (2³¹ s).
#[test]
fn claim_three_lc_68_year_error_rate() {
    let est = AnalyticCer::default();
    let cer = est.cer(optimize::three_level_optimal(), 2f64.powi(31));
    assert!(cer <= 1e-7, "3LCo CER at 68 years: {cer:e} (paper: ~1e-8)");
}

/// §6.5 / Table 3: densities 1.52 / 1.41 / ~1.29 bits per cell and the
/// 7.4% capacity gap; §6.6/Table 3: BCH-1 decodes ≥8× faster than
/// BCH-10; mark-and-spare spends 2 cells per failure vs ECP's 5.
#[test]
fn claim_capacity_and_latency_table3() {
    use mlc_pcm::ecc::latency;
    use mlc_pcm::wearout::capacity;
    let four = capacity::four_level_budget(6).density();
    let three = capacity::three_on_two_budget(6).density();
    let perm = capacity::permutation_budget(6).density();
    assert!((four - 1.52).abs() < 0.01);
    assert!((three - 1.41).abs() < 0.01);
    assert!((perm - 1.28).abs() < 0.01);
    let gap = 1.0 - three / four;
    assert!((gap - 0.074).abs() < 0.005, "7.4% gap: {gap}");

    let speedup = latency::decode_fo4(10, 512) / latency::decode_fo4(1, 512);
    assert!(speedup >= 8.0, "8x decode speedup: {speedup}");

    assert_eq!(mlc_pcm::wearout::MarkSpareCodec::cells_per_failure(), 2);
    assert_eq!(mlc_pcm::wearout::ecp::CELLS_PER_ENTRY, 5);
}

/// §4.1 / Figure 4: availability anchors (74% device, 97% bank at 17
/// minutes) and the 410 s full-pass write-throughput floor.
#[test]
fn claim_availability_figure4() {
    let g = DeviceGeometry::default();
    let a = retention::availability(&g, REFRESH_17MIN_SECS);
    assert!((a.device - 0.737).abs() < 0.01);
    assert!((a.bank - 0.967).abs() < 0.005);
    let pass = retention::min_interval_for_write_throughput(&g, 40e6, 1.0);
    assert!((400.0..440.0).contains(&pass), "~410 s: {pass}");
}

/// §7 / Figure 16: the performance/energy ordering — 3LC ≈ NO-REF beat
/// REF for memory-intensive workloads; namd is insensitive; headline
/// gains in the paper's region.
#[test]
fn claim_figure16_shape() {
    use mlc_pcm::sim::{figure16, summary_gains, DesignPoint, EnergyModel, SimParams};
    let bars = figure16(&SimParams::default(), &EnergyModel::default(), 1_500_000, 3);
    for b in &bars {
        if b.design == DesignPoint::ThreeLc {
            if b.workload == "namd" {
                assert!((b.norm_exec_time - 1.0).abs() < 0.02);
            } else {
                assert!(
                    b.norm_exec_time < 0.9,
                    "{}: {}",
                    b.workload,
                    b.norm_exec_time
                );
            }
        }
    }
    let (perf, energy) = summary_gains(&bars);
    assert!(perf > 0.2, "perf gain {perf} (paper: 0.33)");
    assert!(energy > 0.1, "energy saving {energy} (paper: 0.24)");
}

/// §2.4 methodology: the Monte-Carlo estimator (the paper's) and our
/// analytic estimator agree through the whole 4LC design space.
#[test]
fn claim_estimators_agree() {
    let mc = MonteCarloCer::new(300_000, 12345).with_threads(4);
    let an = AnalyticCer::default();
    for d in [
        LevelDesign::four_level_naive(),
        LevelDesign::four_level_smart(),
        optimize::four_level_optimal().clone(),
    ] {
        let t = 2f64.powi(15);
        let a = an.cer(&d, t);
        let report = mc.estimate(&d, &[t]);
        let (lo, hi) = report.points[0].overall.wilson_interval(1e-4);
        assert!(
            a >= lo * 0.7 && a <= hi * 1.3,
            "{}: analytic {a:e} vs MC [{lo:e}, {hi:e}]",
            d.name
        );
    }
}
