//! End-to-end tests of the KV serving layer on the full device stack:
//! round trips through the facade, reopen persistence, thread-count
//! determinism of the workload generator, and `trace-report` rendering
//! of the `kv_*` spans the store emits.

use mlc_pcm::device::{CellOrganization, PcmDevice, ShardedPcmDevice, TraceConfig};
use mlc_pcm::sim::trace_report;
use mlc_pcm::store::workload::{self, Mix, WorkloadConfig};
use mlc_pcm::store::{PcmStore, StoreConfig};
use mlc_pcm::trace::{jsonl, OpKind};

fn traced_device(blocks: usize, seed: u64) -> ShardedPcmDevice {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            mlc_pcm::core::level::LevelDesign::three_level_naive(),
        ))
        .blocks(blocks)
        .banks(4)
        .seed(seed)
        .trace(TraceConfig::new(8192))
        .build_sharded()
        .unwrap()
}

fn fresh_store(cfg: &WorkloadConfig, seed: u64) -> PcmStore {
    let store_cfg = StoreConfig {
        dir_buckets: 16,
        stripes: 8,
    };
    let blocks = cfg.required_blocks(&store_cfg).div_ceil(4) * 4;
    PcmStore::format(traced_device(blocks, seed), store_cfg).unwrap()
}

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig {
        seed: 7,
        actors: 4,
        keys_per_actor: 12,
        ops_per_actor: 40,
        value_bytes: 80,
        mix: Mix::YCSB_A,
        zipf_theta: 0.99,
    }
}

#[test]
fn kv_round_trip_and_reopen_through_the_full_stack() {
    let dev = traced_device(64, 3);
    let store = PcmStore::format(
        dev,
        StoreConfig {
            dir_buckets: 8,
            stripes: 4,
        },
    )
    .unwrap();

    // Values spanning one and several pages, plus an overwrite.
    store.put(1, b"short").unwrap();
    store.put(2, &[0xAB; 150]).unwrap();
    store.put(1, b"replaced").unwrap();
    assert_eq!(store.get(1).unwrap().as_deref(), Some(&b"replaced"[..]));
    assert_eq!(store.get(2).unwrap().as_deref(), Some(&[0xAB; 150][..]));
    assert_eq!(store.get(99).unwrap(), None);
    assert!(store.delete(2).unwrap());
    assert!(!store.delete(2).unwrap());

    // Reopen from the raw device: state lives entirely on the device.
    let reopened = PcmStore::open(store.into_device()).unwrap();
    assert_eq!(reopened.get(1).unwrap().as_deref(), Some(&b"replaced"[..]));
    assert_eq!(reopened.get(2).unwrap(), None);
}

#[test]
fn workload_totals_are_identical_across_runs_and_thread_counts() {
    let cfg = small_cfg();
    let mut baseline = None;
    for threads in [1usize, 2, 8, 2] {
        // includes a repeat run at 2 threads
        let store = fresh_store(&cfg, cfg.seed);
        let report = workload::run(&store, &cfg, threads).unwrap();
        assert_eq!(report.totals.mismatches, 0, "read verification failed");
        assert_eq!(report.totals.misses, 0, "preloaded keys cannot miss");
        assert_eq!(
            report.totals.measured_ops(),
            cfg.actors as u64 * cfg.ops_per_actor
        );
        match &baseline {
            None => baseline = Some(report.totals),
            Some(b) => assert_eq!(*b, report.totals, "{threads} threads diverged"),
        }
    }
}

#[test]
fn trace_report_renders_kv_spans() {
    let cfg = small_cfg();
    let store = fresh_store(&cfg, cfg.seed);
    workload::run(&store, &cfg, 2).unwrap();

    let snap = store.device().tracer().buffer().unwrap().snapshot();
    let doc = jsonl::export(&snap);
    let report = trace_report::analyze(&doc).unwrap();

    for kind in [OpKind::KvGet, OpKind::KvPut] {
        let hist = report
            .histograms
            .iter()
            .find(|h| h.kind == kind)
            .unwrap_or_else(|| panic!("no {} histogram", kind.name()));
        assert!(hist.count > 0, "{} spans missing", kind.name());
        assert!(hist.p50_ns > 0, "{} spans have no duration", kind.name());
    }

    let text = report.render_text();
    assert!(text.contains("kv_get"), "render_text lacks kv_get column");
    assert!(text.contains("kv_put"), "render_text lacks kv_put column");
    // The JSON rendering carries the kv kinds too (for dashboards).
    let json = report.to_json();
    assert!(json.contains("kv_put"));
}
