//! The tracing determinism oracle.
//!
//! The `pcm-trace` contract: events for bank `b` are recorded while
//! bank `b` is (logically) owned, so each bank's event stream is a pure
//! function of that bank's operation order. Therefore the sharded
//! engine at any thread count must produce — after the canonical
//! per-bank sort by `(t_ns, seq)` — the *identical* event stream as the
//! sequential engine, and a fixed-seed run must export byte-identical
//! JSONL every time.

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::device::{
    BankScrubCursor, CellOrganization, PcmDevice, RefreshController, ShardedScrubber, TraceConfig,
};
use mlc_pcm::trace::{jsonl, TraceEvent};
use proptest::collection::vec;
use proptest::prelude::*;

const BLOCKS: usize = 16;
const BANKS: usize = 4;
const INTERVAL: f64 = 1.6; // step = 0.1 s: round boundaries are exact

fn builder(seed: u64) -> mlc_pcm::device::DeviceBuilder {
    PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(BLOCKS)
        .banks(BANKS)
        .seed(seed)
        .trace(TraceConfig::new(4096))
}

fn payload(b: usize) -> Vec<u8> {
    vec![b as u8 ^ 0x5A; 64]
}

type Rounds = Vec<Vec<(usize, bool)>>;

/// Sequential reference: write all blocks, then per round scrub via the
/// `RefreshController` and apply demand ops. Returns the canonical
/// per-bank event streams.
fn sequential_events(seed: u64, rounds: &Rounds) -> Vec<Vec<TraceEvent>> {
    let mut dev = builder(seed).build().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &payload(b)).unwrap();
    }
    let mut ctl = RefreshController::new(INTERVAL);
    for (k, ops) in rounds.iter().enumerate() {
        let t = INTERVAL * (k + 1) as f64;
        dev.advance_time(t - dev.now());
        ctl.run_until(&mut dev, t);
        for &(block, is_write) in ops {
            if is_write {
                dev.write_block(block, &payload(block)).unwrap();
            } else {
                dev.read_block(block).unwrap();
            }
        }
    }
    dev.tracer()
        .buffer()
        .unwrap()
        .snapshot()
        .canonical_per_bank()
}

/// The sharded run at `threads` threads: per round, each thread drives
/// the scrub cursors of the banks it owns, then that bank's demand ops
/// — the same per-bank order as the sequential reference.
fn sharded_events(seed: u64, rounds: &Rounds, threads: usize) -> Vec<Vec<TraceEvent>> {
    let dev = builder(seed).build_sharded().unwrap();
    for b in 0..BLOCKS {
        dev.write_block(b, &payload(b)).unwrap();
    }
    let mut scrubber = ShardedScrubber::new(&dev, INTERVAL);
    for (k, ops) in rounds.iter().enumerate() {
        let t = INTERVAL * (k + 1) as f64;
        dev.advance_time(t - dev.now());
        let mut cursors = scrubber.bank_cursors();
        std::thread::scope(|scope| {
            let mut groups: Vec<Vec<&mut BankScrubCursor>> =
                (0..threads).map(|_| Vec::new()).collect();
            for cursor in cursors.iter_mut() {
                groups[cursor.bank() % threads].push(cursor);
            }
            for group in groups {
                let dev = &dev;
                scope.spawn(move || {
                    let mut session = dev.session();
                    let mut owned = Vec::new();
                    for cursor in group {
                        cursor.run_until(dev, t);
                        owned.push(cursor.bank());
                    }
                    for &(block, is_write) in ops {
                        if !owned.contains(&(block % BANKS)) {
                            continue;
                        }
                        if is_write {
                            session.write_block(block, &payload(block)).unwrap();
                        } else {
                            session.read_block(block).unwrap();
                        }
                    }
                });
            }
        });
        scrubber.adopt_cursors(&cursors);
    }
    dev.tracer()
        .buffer()
        .unwrap()
        .snapshot()
        .canonical_per_bank()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_trace_matches_sequential_at_any_thread_count(
        seed in 0u64..1000,
        rounds in vec(vec((0usize..16, any::<bool>()), 0..12), 1..4),
    ) {
        let want = sequential_events(seed, &rounds);
        prop_assert!(
            want.iter().map(Vec::len).sum::<usize>() > 0,
            "reference run must trace something"
        );
        for threads in [1usize, 2, 8] {
            let got = sharded_events(seed, &rounds, threads);
            prop_assert_eq!(&got, &want, "event streams diverge at threads={}", threads);
        }
    }
}

#[test]
fn fixed_seed_jsonl_is_byte_identical_across_runs() {
    let run = || {
        let mut dev = builder(77).build().unwrap();
        for b in 0..BLOCKS {
            dev.write_block(b, &payload(b)).unwrap();
        }
        let mut ctl = RefreshController::new(INTERVAL);
        dev.advance_time(2.0 * INTERVAL);
        ctl.run_until(&mut dev, 2.0 * INTERVAL);
        for b in 0..BLOCKS {
            dev.read_block(b).unwrap();
        }
        jsonl::export(&dev.tracer().buffer().unwrap().snapshot())
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same ops must export identical bytes");
    // And the export round-trips through the parser.
    let parsed = jsonl::parse(&a).unwrap();
    assert_eq!(parsed.banks, BANKS);
    assert!(parsed.events.len() > BLOCKS);
}

#[test]
fn tracing_does_not_perturb_device_results() {
    // A traced device and an untraced one walk identical trajectories:
    // the recorder observes, it never participates.
    let run = |traced: bool| {
        let b = PcmDevice::builder()
            .organization(CellOrganization::ThreeLevel(
                LevelDesign::three_level_naive(),
            ))
            .blocks(BLOCKS)
            .banks(BANKS)
            .seed(5);
        let b = if traced {
            b.trace(TraceConfig::new(256))
        } else {
            b
        };
        let mut dev = b.build().unwrap();
        for blk in 0..BLOCKS {
            dev.write_block(blk, &payload(blk)).unwrap();
        }
        let mut ctl = RefreshController::new(INTERVAL);
        dev.advance_time(INTERVAL);
        ctl.run_until(&mut dev, INTERVAL);
        let data: Vec<Vec<u8>> = (0..BLOCKS)
            .map(|blk| dev.read_block(blk).unwrap().data)
            .collect();
        (data, dev.bank_stats(), dev.metrics().snapshot())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn dropped_events_are_counted_not_blocking() {
    // A deliberately tiny ring: recording must stay non-blocking and
    // surface the overwritten count in the snapshot (and from there in
    // trace-report).
    let mut small = PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(BLOCKS)
        .banks(BANKS)
        .seed(3)
        .trace(TraceConfig::new(4))
        .build()
        .unwrap();
    for round in 0..8 {
        for b in 0..BLOCKS {
            small.write_block(b, &payload(b ^ round)).unwrap();
        }
    }
    let snap = small.tracer().buffer().unwrap().snapshot();
    assert!(snap.total_dropped() > 0, "tiny ring must overwrite");
    for lane in &snap.per_bank {
        assert!(lane.events.len() <= 4, "ring bound respected");
        assert_eq!(lane.recorded, lane.dropped + lane.events.len() as u64);
    }
    // The dropped count survives the JSONL round trip into the report.
    let doc = jsonl::export(&snap);
    let report = mlc_pcm::sim::trace_report::analyze(&doc).unwrap();
    assert_eq!(report.total_dropped, snap.total_dropped());
}
