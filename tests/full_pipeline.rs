//! Cross-crate integration: the full write → drift → (refresh) → read
//! pipelines, combining the cell model (pcm-core), codecs (pcm-codec),
//! ECC (pcm-ecc), wearout tolerance (pcm-wearout) and the device
//! simulator (pcm-device).

use mlc_pcm::core::level::LevelDesign;
use mlc_pcm::core::params::{REFRESH_17MIN_SECS, SECS_PER_YEAR, TEN_YEARS_SECS};
use mlc_pcm::device::{BlockError, CellOrganization, PcmDevice, RefreshController};

fn pattern(b: usize, salt: u8) -> Vec<u8> {
    (0..64)
        .map(|i| ((b * 64 + i) as u8).wrapping_mul(13).wrapping_add(salt))
        .collect()
}

#[test]
fn three_level_device_full_decade_with_wearout() {
    // The paper's full story on one device: wearout during the write
    // phase, then ten unpowered years, then perfect readback.
    let mut dev = PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(32)
        .banks(8)
        .seed(2013)
        .build()
        .unwrap();
    // Sprinkle early-failing cells across the array.
    for k in 0..24 {
        dev.inject_lifetime((k * 997) % (32 * 364), k as u64 % 4 + 1);
    }
    // Write everything a few times (persistent-store usage).
    for round in 0..4 {
        for b in 0..32 {
            dev.write_block(b, &pattern(b, round))
                .expect("write survives wearout");
        }
    }
    assert!(dev.stats().wearout_faults > 0, "sabotage must bite");
    dev.advance_time(TEN_YEARS_SECS);
    for b in 0..32 {
        let r = dev.read_block(b).expect("nonvolatile readback");
        assert_eq!(r.data, pattern(b, 3), "block {b}");
    }
}

#[test]
fn four_level_device_lives_on_refresh_dies_without() {
    let design = mlc_pcm::core::optimize::four_level_optimal().clone();
    // Refreshed device: survives a simulated day of 17-minute scrubs.
    let mut refreshed = PcmDevice::builder()
        .organization(CellOrganization::FourLevel {
            design: design.clone(),
            smart: true,
        })
        .blocks(16)
        .banks(8)
        .seed(5)
        .build()
        .unwrap();
    for b in 0..16 {
        refreshed.write_block(b, &pattern(b, 1)).unwrap();
    }
    let mut ctl = RefreshController::new(REFRESH_17MIN_SECS);
    for k in 1..=84u32 {
        refreshed.advance_time(REFRESH_17MIN_SECS);
        let rep = ctl.run_until(&mut refreshed, REFRESH_17MIN_SECS * k as f64);
        assert_eq!(rep.failures, 0, "scrub failed at period {k}");
    }
    for b in 0..16 {
        assert_eq!(refreshed.read_block(b).unwrap().data, pattern(b, 1));
    }

    // The same organization without refresh must eventually lose data.
    let mut bare = PcmDevice::builder()
        .organization(CellOrganization::FourLevel {
            design: LevelDesign::four_level_naive(),
            smart: false,
        })
        .blocks(16)
        .banks(8)
        .seed(5)
        .build()
        .unwrap();
    for b in 0..16 {
        bare.write_block(b, &pattern(b, 1)).unwrap();
    }
    bare.advance_time(SECS_PER_YEAR);
    let dead = (0..16)
        .filter(|&b| !matches!(bare.read_block(b), Ok(r) if r.data == pattern(b, 1)))
        .count();
    assert!(
        dead >= 15,
        "a year of unrefreshed 4LCn drift: {dead}/16 dead"
    );
}

#[test]
fn refresh_resets_the_drift_clock_not_just_errors() {
    // After many refresh periods, a refreshed block must look as young as
    // a freshly written one: the next period's error statistics must not
    // accumulate.
    let mut dev = PcmDevice::builder()
        .organization(CellOrganization::FourLevel {
            design: mlc_pcm::core::optimize::four_level_optimal().clone(),
            smart: false,
        })
        .blocks(8)
        .banks(8)
        .seed(17)
        .build()
        .unwrap();
    for b in 0..8 {
        dev.write_block(b, &pattern(b, 9)).unwrap();
    }
    // 40 periods with scrubs: corrected bit count should stay roughly
    // constant per period (no error accumulation across periods).
    let mut per_period = Vec::new();
    for _ in 0..40 {
        dev.advance_time(REFRESH_17MIN_SECS);
        let before = dev.stats().corrected_bits;
        for b in 0..8 {
            dev.refresh_block(b).unwrap();
        }
        per_period.push(dev.stats().corrected_bits - before);
    }
    let first_half: u64 = per_period[..20].iter().sum();
    let second_half: u64 = per_period[20..].iter().sum();
    // Allow noise, but no systematic growth (second half ≤ 4× first+3).
    assert!(
        second_half <= 4 * first_half + 3,
        "drift errors accumulate across refreshes: {per_period:?}"
    );
}

#[test]
fn mixed_traffic_determinism() {
    // Two identically seeded devices fed identical traffic must agree
    // bit-for-bit in data and statistics.
    let build = || {
        PcmDevice::builder()
            .organization(CellOrganization::ThreeLevel(
                LevelDesign::three_level_naive(),
            ))
            .blocks(16)
            .banks(4)
            .seed(42)
            .build()
            .unwrap()
    };
    let run = |mut dev: PcmDevice| {
        for step in 0..200u32 {
            let b = (step as usize * 7) % 16;
            if step % 3 == 0 {
                let _ = dev.write_block(b, &pattern(b, step as u8));
            } else {
                let _ = dev.read_block(b);
            }
            dev.advance_time(3600.0);
        }
        (
            dev.stats(),
            (0..16)
                .map(|b| dev.read_block(b).ok().map(|r| r.data))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(build()), run(build()));
}

#[test]
fn wearout_exhaustion_is_contained_per_block() {
    // Exhausting one block's spares must not affect its neighbors.
    let mut dev = PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(4)
        .banks(4)
        .seed(3)
        .build()
        .unwrap();
    // Kill 8 pairs of block 2 only.
    for p in 0..8 {
        dev.inject_lifetime(2 * 364 + p * 2, 1);
    }
    let mut block2_failed = false;
    for round in 0..12u8 {
        for b in 0..4 {
            match dev.write_block(b, &pattern(b, round)) {
                Ok(_) => {}
                Err(BlockError::WearoutExhausted) if b == 2 => block2_failed = true,
                Err(e) => panic!("block {b} unexpectedly failed: {e}"),
            }
        }
    }
    assert!(block2_failed, "block 2 must exhaust its six spares");
    for b in [0usize, 1, 3] {
        assert_eq!(dev.read_block(b).unwrap().data, pattern(b, 11), "block {b}");
    }
}

#[test]
fn corrected_bits_are_reported_through_the_stack() {
    // Age a 3LC device to where occasional drift errors appear, scrub,
    // and confirm the BCH-1 corrections surface in device stats.
    let mut dev = PcmDevice::builder()
        .organization(CellOrganization::ThreeLevel(
            LevelDesign::three_level_naive(),
        ))
        .blocks(64)
        .banks(8)
        .seed(1234)
        .build()
        .unwrap();
    for b in 0..64 {
        dev.write_block(b, &pattern(b, 0)).unwrap();
    }
    // ~34 years: 3LCn CER ≈ 1e-6..1e-5 — with 64 blocks × 354 cells we
    // expect a handful of single-cell upsets, all correctable.
    dev.advance_time(2f64.powi(30));
    for b in 0..64 {
        let r = dev.read_block(b).expect("BCH-1 absorbs rare upsets");
        assert_eq!(r.data, pattern(b, 0));
    }
    // Statistics must be consistent with reads.
    assert_eq!(dev.stats().reads, 64);
    assert_eq!(dev.stats().uncorrectable_reads, 0);
}
